//! A compiled e-matching abstract machine (de Moura & Bjørner 2007, as in
//! egg): each [`Pattern`](crate::Pattern) is compiled once into a linear
//! instruction [`Program`] that is executed against candidate e-classes
//! with a single reusable register stack, instead of recursively cloning
//! per-branch substitution vectors.
//!
//! Three instructions suffice:
//!
//! * [`Instruction::Bind`] — enumerate the e-nodes of the class in register
//!   `i` whose operator matches the pattern node, writing each node's
//!   (canonicalized) children into registers `out..`; the machine
//!   backtracks over the alternatives.
//! * [`Instruction::Compare`] — require two registers to hold the same
//!   e-class (non-linear patterns such as `(+ ?x ?x)`).
//! * [`Instruction::Lookup`] — match a variable-free subterm in O(term)
//!   hash-cons lookups instead of enumerating class nodes; on a congruent
//!   e-graph a ground term has exactly one realization, which is also
//!   checked against the filter set node by node.
//!
//! Search additionally consults the e-graph's operator index
//! ([`EGraph::classes_with_op`]): only classes containing at least one node
//! with the same operator discriminant as the pattern root are visited.
//!
//! The operator index also yields a natural *parallel* decomposition:
//! programs are immutable and the e-graph's read path is `Sync`-clean, so
//! candidate classes can be split into contiguous chunks and searched by
//! scoped threads, each with its own register stack
//! ([`Program::search_parallel`] and the batch driver behind
//! [`crate::search_all_parallel`]). Merging the chunk outputs in chunk
//! order reproduces the sequential result bit for bit.

use crate::{Analysis, EGraph, ENodeOrVar, Id, Language, RecExpr, SearchMatches, Subst, Var};
use std::collections::{HashMap, VecDeque};
use std::mem::Discriminant;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// A virtual register holding an e-class id during matching.
pub type Reg = usize;

/// One step of a compiled pattern program.
#[derive(Debug, Clone)]
pub enum Instruction<L> {
    /// Try every e-node of the class in register `i` that matches `node`
    /// (and is not filtered); write its children into `out..out+arity`.
    Bind {
        /// The pattern node to match (children ids are pattern-internal and
        /// ignored; only the operator matters).
        node: L,
        /// Register holding the class to search.
        i: Reg,
        /// First output register for the matched node's children.
        out: Reg,
    },
    /// Fail unless registers `i` and `j` hold the same e-class.
    Compare {
        /// First register.
        i: Reg,
        /// Second register.
        j: Reg,
    },
    /// Fail unless the ground (variable-free) term is represented,
    /// unfiltered, and lives in the class held by register `i`.
    Lookup {
        /// The ground term, children-first.
        term: RecExpr<L>,
        /// Register the term's class must equal.
        i: Reg,
    },
}

/// A pattern compiled to a linear instruction sequence.
///
/// Obtained from [`Pattern::program`](crate::Pattern::program) (which
/// compiles lazily and caches) or directly via [`Program::compile`].
#[derive(Debug, Clone)]
pub struct Program<L> {
    instructions: Vec<Instruction<L>>,
    /// `(variable, register)` pairs in first-occurrence (AST) order; read
    /// out at every successful match to build the substitution.
    subst_template: Vec<(Var, Reg)>,
    /// Operator discriminant of the pattern root, if the root is a concrete
    /// node — used to restrict search via the e-graph's operator index.
    root_op: Option<Discriminant<L>>,
}

impl<L: Language> Program<L> {
    /// Compiles a pattern AST into an instruction program.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is empty.
    pub fn compile(pattern: &RecExpr<ENodeOrVar<L>>) -> Self {
        assert!(!pattern.is_empty(), "cannot compile an empty pattern");
        let root = pattern.root();

        // A pattern node is ground if its subtree contains no variables
        // (children precede parents in a RecExpr, so one pass suffices).
        let mut ground = vec![false; pattern.len()];
        for (id, node) in pattern.iter() {
            ground[usize::from(id)] = match node {
                ENodeOrVar::Var(_) => false,
                ENodeOrVar::ENode(n) => n.children().iter().all(|&c| ground[usize::from(c)]),
            };
        }

        let mut instructions = vec![];
        let mut v2r: HashMap<Var, Reg> = HashMap::new();
        let mut todo: VecDeque<(Reg, Id)> = VecDeque::from([(0, root)]);
        let mut next_reg: Reg = 1;
        while let Some((reg, pat_id)) = todo.pop_front() {
            match &pattern[pat_id] {
                ENodeOrVar::Var(v) => match v2r.get(v) {
                    Some(&bound) => instructions.push(Instruction::Compare { i: bound, j: reg }),
                    None => {
                        v2r.insert(*v, reg);
                    }
                },
                ENodeOrVar::ENode(node) => {
                    // Ground subterms become O(term)-time hash-cons lookups.
                    // The root stays a Bind so per-candidate work in the
                    // search loop does not repeat a whole-term lookup.
                    if ground[usize::from(pat_id)] && pat_id != root {
                        instructions.push(Instruction::Lookup {
                            term: ground_term(pattern, pat_id),
                            i: reg,
                        });
                    } else {
                        let out = next_reg;
                        next_reg += node.children().len();
                        instructions.push(Instruction::Bind {
                            node: node.clone(),
                            i: reg,
                            out,
                        });
                        for (k, &child) in node.children().iter().enumerate() {
                            todo.push_back((out + k, child));
                        }
                    }
                }
            }
        }

        // Substitution template in AST first-occurrence order. (For the
        // usual bottom-up-built patterns this coincides with the recursive
        // matcher's DFS binding order, but not for every AST layout —
        // comparisons across matchers must normalize binding order.)
        // Variables that only occur in AST nodes unreachable from the root
        // never got a register (the recursive matcher never binds them
        // either).
        let mut subst_template = vec![];
        for (_, node) in pattern.iter() {
            if let ENodeOrVar::Var(v) = node {
                if let Some(&reg) = v2r.get(v) {
                    if !subst_template.iter().any(|(u, _)| u == v) {
                        subst_template.push((*v, reg));
                    }
                }
            }
        }

        let root_op = match &pattern[root] {
            ENodeOrVar::ENode(n) => Some(n.discriminant()),
            ENodeOrVar::Var(_) => None,
        };

        Program {
            instructions,
            subst_template,
            root_op,
        }
    }

    /// The compiled instruction sequence.
    pub fn instructions(&self) -> &[Instruction<L>] {
        &self.instructions
    }

    /// The operator discriminant of the pattern root, if it is a concrete
    /// node (used as the operator-index key).
    pub fn root_op(&self) -> Option<Discriminant<L>> {
        self.root_op
    }

    /// Searches the whole e-graph, visiting only classes the operator index
    /// deems candidates.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the e-graph is clean: searching a dirty e-graph
    /// silently returns stale or incomplete matches.
    pub fn search<N: Analysis<L>>(&self, egraph: &EGraph<L, N>) -> Vec<SearchMatches> {
        self.search_since(egraph, 0)
    }

    /// Like [`Program::search`], but skips classes untouched since the
    /// given watermark (a snapshot of [`EGraph::watermark`]).
    pub fn search_since<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        watermark: u64,
    ) -> Vec<SearchMatches> {
        debug_assert!(
            egraph.is_clean(),
            "pattern search on a dirty e-graph returns stale matches; call rebuild() first"
        );
        let mut machine = Machine::default();
        let lookups = machine_lookups(egraph, &self.instructions);
        let mut out = vec![];
        match self.root_op {
            Some(op) => {
                for &id in egraph.classes_with_op(op) {
                    if egraph.eclass(id).last_touched() < watermark {
                        continue;
                    }
                    if let Some(m) = self.search_class(egraph, &mut machine, &lookups, id) {
                        out.push(m);
                    }
                }
            }
            None => {
                for class in egraph.classes() {
                    if class.last_touched() < watermark {
                        continue;
                    }
                    if let Some(m) = self.search_class(egraph, &mut machine, &lookups, class.id) {
                        out.push(m);
                    }
                }
            }
        }
        out
    }

    /// Parallel version of [`Program::search`]: candidate classes are split
    /// into contiguous chunks sharded across `n_threads` scoped threads,
    /// each running the (immutable) program with its own register stack.
    /// Chunk outputs are merged in chunk order, so the result is
    /// bit-identical to the sequential search. `n_threads <= 1` runs the
    /// sequential driver.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the e-graph is clean (see [`Program::search`]).
    pub fn search_parallel<N>(&self, egraph: &EGraph<L, N>, n_threads: usize) -> Vec<SearchMatches>
    where
        L: Sync,
        N: Analysis<L> + Sync,
        N::Data: Sync,
    {
        self.search_since_parallel(egraph, 0, n_threads)
    }

    /// Parallel version of [`Program::search_since`]; see
    /// [`Program::search_parallel`].
    pub fn search_since_parallel<N>(
        &self,
        egraph: &EGraph<L, N>,
        watermark: u64,
        n_threads: usize,
    ) -> Vec<SearchMatches>
    where
        L: Sync,
        N: Analysis<L> + Sync,
        N::Data: Sync,
    {
        let mut out = search_programs_since_parallel(&[self], egraph, watermark, n_threads);
        out.pop().expect("one program in, one match list out")
    }

    /// The classes this program's search visits, in the deterministic order
    /// the sequential driver uses (ascending class id, restricted by the
    /// operator index when the root is a concrete node), skipping classes
    /// untouched since `watermark`.
    fn candidate_classes<N: Analysis<L>>(&self, egraph: &EGraph<L, N>, watermark: u64) -> Vec<Id> {
        match self.root_op {
            Some(op) => egraph
                .classes_with_op(op)
                .iter()
                .copied()
                .filter(|&id| egraph.eclass(id).last_touched() >= watermark)
                .collect(),
            None => egraph
                .classes()
                .filter(|class| class.last_touched() >= watermark)
                .map(|class| class.id)
                .collect(),
        }
    }

    /// Searches a single e-class.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the e-graph is clean (see [`Program::search`]).
    pub fn search_eclass<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        eclass: Id,
    ) -> Option<SearchMatches> {
        debug_assert!(
            egraph.is_clean(),
            "pattern search on a dirty e-graph returns stale matches; call rebuild() first"
        );
        let mut machine = Machine::default();
        let lookups = machine_lookups(egraph, &self.instructions);
        self.search_class(egraph, &mut machine, &lookups, egraph.find(eclass))
    }

    fn search_class<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        machine: &mut Machine,
        lookups: &[Option<Id>],
        eclass: Id,
    ) -> Option<SearchMatches> {
        machine.regs.clear();
        machine.regs.push(eclass);
        let mut substs = vec![];
        machine.run(
            egraph,
            &self.instructions,
            0,
            lookups,
            &self.subst_template,
            &mut substs,
        );
        // Distinct derivations can in principle yield the same binding;
        // sort before dedup so non-adjacent duplicates are removed too.
        substs.sort_unstable();
        substs.dedup();
        (!substs.is_empty()).then_some(SearchMatches { eclass, substs })
    }
}

/// Chunks per worker thread in the parallel search driver. More chunks than
/// threads lets the atomic work queue rebalance when candidate classes have
/// very uneven node counts (common: a few classes hold most of a model's
/// operator nodes); contiguous chunks keep the merge deterministic.
const CHUNKS_PER_THREAD: usize = 8;

/// Searches several compiled programs over one e-graph, sharding all their
/// candidate classes across `n_threads` scoped threads.
///
/// Work items — contiguous chunks of each program's candidate list — go
/// into a single atomic queue, so threads load-balance *across* programs:
/// one hot rule's chunks spread over every thread instead of serializing
/// the batch. Each thread owns a private register stack; the shared e-graph
/// is only read (its search accessors are `Sync`-clean). Chunk outputs are
/// written to per-item slots and merged in item order, which reproduces the
/// sequential per-program match lists bit for bit.
///
/// `n_threads <= 1` (or an empty candidate set) runs the sequential driver
/// directly — identical behavior, no thread overhead.
pub(crate) fn search_programs_since_parallel<L, N>(
    programs: &[&Program<L>],
    egraph: &EGraph<L, N>,
    watermark: u64,
    n_threads: usize,
) -> Vec<Vec<SearchMatches>>
where
    L: Language + Sync,
    N: Analysis<L> + Sync,
    N::Data: Sync,
{
    // The sequential mode IS the sequential driver — no candidate vectors,
    // no duplicated iteration logic that could drift from `search_since`.
    if n_threads <= 1 {
        return programs
            .iter()
            .map(|p| p.search_since(egraph, watermark))
            .collect();
    }
    debug_assert!(
        egraph.is_clean(),
        "pattern search on a dirty e-graph returns stale matches; call rebuild() first"
    );
    let candidates: Vec<Vec<Id>> = programs
        .iter()
        .map(|p| p.candidate_classes(egraph, watermark))
        .collect();
    let total: usize = candidates.iter().map(Vec::len).sum();

    // Clamp the worker count: more workers than candidate classes would
    // spawn threads with nothing to do, and more than a few per core is
    // pure oversubscription (a caller passing `1000` must not create 999
    // OS threads). The small multiple still lets CI force a >1 count on a
    // single-core runner to exercise this path. A clamp to 1 means every
    // spawned worker would idle — run sequentially.
    let max_workers = std::thread::available_parallelism().map_or(4, |n| n.get() * 4);
    let n_threads = n_threads.min(max_workers).min(total.max(1));
    if n_threads == 1 {
        return programs
            .iter()
            .map(|p| p.search_since(egraph, watermark))
            .collect();
    }

    // Ground-term lookups are a per-(program, e-graph) constant: resolve
    // them once here and share them read-only with every shard.
    let lookups: Vec<Vec<Option<Id>>> = programs
        .iter()
        .map(|p| machine_lookups(egraph, &p.instructions))
        .collect();

    let chunk_size = total.div_ceil(n_threads * CHUNKS_PER_THREAD).max(1);
    let mut items: Vec<(usize, std::ops::Range<usize>)> = vec![];
    for (prog_idx, classes) in candidates.iter().enumerate() {
        let mut start = 0;
        while start < classes.len() {
            let end = (start + chunk_size).min(classes.len());
            items.push((prog_idx, start..end));
            start = end;
        }
    }

    // One result slot per work item; each slot is written exactly once, by
    // the thread that claimed the item off the queue.
    let slots: Vec<OnceLock<Vec<SearchMatches>>> = items.iter().map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let work = || {
        let mut machine = Machine::default();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some((prog_idx, range)) = items.get(i) else {
                break;
            };
            let program = programs[*prog_idx];
            let found: Vec<SearchMatches> = candidates[*prog_idx][range.clone()]
                .iter()
                .filter_map(|&id| {
                    program.search_class(egraph, &mut machine, &lookups[*prog_idx], id)
                })
                .collect();
            slots[i].set(found).expect("each work item is claimed once");
        }
    };
    std::thread::scope(|scope| {
        // The calling thread is the n-th worker: it drains the queue too,
        // so one spawn is saved and the search still makes progress while
        // the OS brings the workers up.
        for _ in 1..n_threads {
            scope.spawn(work);
        }
        work();
    });

    // Items were generated per program in candidate order, so concatenating
    // the slots in item order reproduces the sequential output exactly.
    let mut out: Vec<Vec<SearchMatches>> = programs.iter().map(|_| vec![]).collect();
    for ((prog_idx, _), slot) in items.iter().zip(slots) {
        out[*prog_idx].extend(slot.into_inner().expect("every work item was processed"));
    }
    out
}

/// Resolves every `Lookup` instruction's ground term to its e-class once
/// per (e-graph, program) pair: the class is a constant for the whole
/// search, so per-visit work reduces to one register compare. `None` marks
/// a term that is absent or filtered — the instruction always fails.
fn machine_lookups<L: Language, N: Analysis<L>>(
    egraph: &EGraph<L, N>,
    instructions: &[Instruction<L>],
) -> Vec<Option<Id>> {
    instructions
        .iter()
        .map(|instruction| match instruction {
            Instruction::Lookup { term, .. } => {
                let mut ids: Vec<Id> = Vec::with_capacity(term.len());
                for (_, node) in term.iter() {
                    let node = node.map_children(|c| ids[usize::from(c)]);
                    // Every node of the (unique) realization must exist and
                    // be unfiltered, exactly as the naive matcher requires.
                    if egraph.is_filtered(&node) {
                        return None;
                    }
                    match egraph.lookup(&node) {
                        Some(found) => ids.push(found),
                        None => return None,
                    }
                }
                ids.last().copied()
            }
            _ => None,
        })
        .collect()
}

/// Builds the standalone `RecExpr` of a ground pattern subtree.
fn ground_term<L: Language>(pattern: &RecExpr<ENodeOrVar<L>>, id: Id) -> RecExpr<L> {
    fn go<L: Language>(
        pattern: &RecExpr<ENodeOrVar<L>>,
        id: Id,
        out: &mut RecExpr<L>,
        memo: &mut HashMap<Id, Id>,
    ) -> Id {
        if let Some(&done) = memo.get(&id) {
            return done;
        }
        let node = match &pattern[id] {
            ENodeOrVar::ENode(n) => n.map_children(|c| go(pattern, c, out, memo)),
            ENodeOrVar::Var(v) => unreachable!("ground subterm contains variable {v}"),
        };
        let added = out.add(node);
        memo.insert(id, added);
        added
    }
    let mut out = RecExpr::default();
    go(pattern, id, &mut out, &mut HashMap::new());
    out
}

/// The register stack. One instance is reused across all candidate classes
/// of a search; backtracking truncates instead of cloning.
#[derive(Debug, Default)]
struct Machine {
    regs: Vec<Id>,
}

impl Machine {
    fn run<L: Language, N: Analysis<L>>(
        &mut self,
        egraph: &EGraph<L, N>,
        instructions: &[Instruction<L>],
        pc: usize,
        lookups: &[Option<Id>],
        subst_template: &[(Var, Reg)],
        out: &mut Vec<Subst>,
    ) {
        for pc in pc..instructions.len() {
            match &instructions[pc] {
                Instruction::Bind { node, i, out: reg } => {
                    let class = egraph.eclass(self.regs[*i]);
                    for enode in class.iter() {
                        if !node.matches(enode) || egraph.is_filtered(enode) {
                            continue;
                        }
                        self.regs.truncate(*reg);
                        for &child in enode.children() {
                            self.regs.push(egraph.find(child));
                        }
                        self.run(egraph, instructions, pc + 1, lookups, subst_template, out);
                    }
                    return;
                }
                Instruction::Compare { i, j } => {
                    if egraph.find(self.regs[*i]) != egraph.find(self.regs[*j]) {
                        return;
                    }
                }
                Instruction::Lookup { term: _, i } => {
                    // The term's class was resolved once for this search
                    // (absent/filtered terms resolve to None: always fail).
                    if lookups[pc] != Some(egraph.find(self.regs[*i])) {
                        return;
                    }
                }
            }
        }
        // All instructions passed: read the bindings out of the registers.
        let mut subst = Subst::new();
        for &(v, r) in subst_template {
            subst.insert(v, egraph.find(self.regs[r]));
        }
        out.push(subst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::test_lang::Math;
    use crate::{Pattern, Symbol};

    fn sym(s: &str) -> Math {
        Math::Sym(Symbol::new(s))
    }

    fn pat(build: impl FnOnce(&mut RecExpr<ENodeOrVar<Math>>)) -> Pattern<Math> {
        let mut ast = RecExpr::default();
        build(&mut ast);
        Pattern::new(ast)
    }

    /// (* ?x 2)
    fn mul_by_two() -> Pattern<Math> {
        pat(|p| {
            let x = p.add(ENodeOrVar::Var(Var::new("x")));
            let two = p.add(ENodeOrVar::ENode(Math::Num(2)));
            p.add(ENodeOrVar::ENode(Math::Mul([x, two])));
        })
    }

    #[test]
    fn compiles_ground_subterm_to_lookup() {
        let program = Program::compile(&mul_by_two().ast);
        let instrs = program.instructions();
        // Root bind + ground lookup for the literal 2; ?x binds a register
        // without emitting an instruction.
        assert_eq!(instrs.len(), 2);
        assert!(matches!(instrs[0], Instruction::Bind { .. }));
        assert!(matches!(instrs[1], Instruction::Lookup { .. }));
        assert!(program.root_op().is_some());
    }

    #[test]
    fn nonlinear_pattern_compiles_compare() {
        let program = Program::compile(
            &pat(|p| {
                let x1 = p.add(ENodeOrVar::Var(Var::new("x")));
                let x2 = p.add(ENodeOrVar::Var(Var::new("x")));
                p.add(ENodeOrVar::ENode(Math::Add([x1, x2])));
            })
            .ast,
        );
        assert!(program
            .instructions()
            .iter()
            .any(|i| matches!(i, Instruction::Compare { .. })));
    }

    #[test]
    fn var_root_has_no_root_op_and_matches_everything() {
        let program = Program::compile(
            &pat(|p| {
                p.add(ENodeOrVar::Var(Var::new("x")));
            })
            .ast,
        );
        assert!(program.root_op().is_none());
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        eg.add(Math::Mul([eg.find(two), two]));
        eg.rebuild();
        assert_eq!(program.search(&eg).len(), eg.number_of_classes());
    }

    #[test]
    fn machine_search_agrees_with_naive_on_basics() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let mul = eg.add(Math::Mul([a, two]));
        eg.add(Math::Mul([mul, two]));
        eg.rebuild();
        let p = mul_by_two();
        let machine = p.program().search(&eg);
        let naive = p.search_naive(&eg);
        assert_eq!(machine.len(), naive.len());
        for (m, n) in machine.iter().zip(&naive) {
            assert_eq!(m.eclass, n.eclass);
            assert_eq!(m.substs, n.substs);
        }
    }

    #[test]
    fn lookup_respects_filtered_ground_nodes() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        eg.add(Math::Mul([a, two]));
        eg.rebuild();
        let p = mul_by_two();
        assert_eq!(p.program().search(&eg).len(), 1);
        // Filtering the literal 2 kills the ground lookup, exactly like the
        // naive matcher skipping the filtered node.
        eg.filter_node(&Math::Num(2));
        assert_eq!(p.program().search(&eg).len(), 0);
        assert_eq!(p.search_naive(&eg).len(), 0);
    }

    /// The parallel driver must return *bit-identical* output to the
    /// sequential one for every thread count, including counts far above
    /// the candidate count (shards degenerate to single classes) — the
    /// chunk-order merge is what guarantees this.
    #[test]
    fn parallel_search_is_bit_identical_for_all_thread_counts() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let two = eg.add(Math::Num(2));
        for i in 0..37 {
            let s = eg.add(sym(&format!("s{i}")));
            let m = eg.add(Math::Mul([s, two]));
            eg.add(Math::Mul([m, two]));
        }
        eg.rebuild();
        let p = mul_by_two();
        let sequential = p.program().search(&eg);
        assert!(!sequential.is_empty());
        for threads in [1, 2, 3, 4, 8, 64, 1000] {
            let parallel = p.program().search_parallel(&eg, threads);
            assert_eq!(sequential, parallel, "thread count {threads}");
        }
    }

    /// Batch driver: every program's match list equals its standalone
    /// sequential search, even when one "hot" pattern dominates the work.
    #[test]
    fn batch_parallel_search_matches_each_program() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let two = eg.add(Math::Num(2));
        let mut prev = eg.add(sym("seed"));
        for i in 0..25 {
            let s = eg.add(sym(&format!("x{i}")));
            let m = eg.add(Math::Mul([s, two]));
            prev = eg.add(Math::Add([prev, m]));
        }
        eg.rebuild();
        let hot = pat(|p| {
            let x = p.add(ENodeOrVar::Var(Var::new("x")));
            let y = p.add(ENodeOrVar::Var(Var::new("y")));
            p.add(ENodeOrVar::ENode(Math::Add([x, y])));
        });
        let cold = mul_by_two();
        let var_root = pat(|p| {
            p.add(ENodeOrVar::Var(Var::new("x")));
        });
        let programs = [hot.program(), cold.program(), var_root.program()];
        let batch = search_programs_since_parallel(&programs, &eg, 0, 4);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0], hot.program().search(&eg));
        assert_eq!(batch[1], cold.program().search(&eg));
        assert_eq!(batch[2], var_root.program().search(&eg));
    }

    #[test]
    #[should_panic(expected = "dirty")]
    fn machine_search_asserts_clean() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let b = eg.add(sym("b"));
        eg.union(a, b);
        let p = mul_by_two();
        let _ = p.program().search(&eg);
    }
}
