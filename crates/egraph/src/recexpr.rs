//! [`RecExpr`]: a flattened, acyclic term representation.
//!
//! A `RecExpr<L>` stores a term as a vector of nodes where every child
//! [`Id`] points at an *earlier* index in the vector. The last node is the
//! root. This is the representation used for inputs to and outputs from
//! the e-graph.

use crate::{Id, Language};
use std::fmt::{self, Display};
use std::ops::Index;

/// A recursive expression (term DAG) over language `L`.
///
/// Children always refer to earlier nodes, so a `RecExpr` is acyclic by
/// construction. Structural sharing is allowed (two nodes may point to the
/// same child index), which is essential for tensor graphs where operators
/// share inputs.
///
/// # Examples
///
/// ```
/// use tensat_egraph::{RecExpr, Id, Language, Symbol};
/// # use tensat_egraph::doctest_lang::SimpleMath as Math;
/// let mut e = RecExpr::<Math>::default();
/// let a = e.add(Math::Sym(Symbol::new("a")));
/// let two = e.add(Math::Num(2));
/// let mul = e.add(Math::Mul([a, two]));
/// let _div = e.add(Math::Div([mul, two]));
/// assert_eq!(e.len(), 4);
/// assert_eq!(e.to_string(), "(/ (* a 2) 2)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RecExpr<L> {
    nodes: Vec<L>,
}

impl<L> Default for RecExpr<L> {
    fn default() -> Self {
        RecExpr { nodes: vec![] }
    }
}

impl<L: Language> RecExpr<L> {
    /// Creates an expression directly from a node vector.
    ///
    /// # Panics
    ///
    /// Panics if any node refers to a child at or after its own index.
    pub fn from_nodes(nodes: Vec<L>) -> Self {
        for (i, n) in nodes.iter().enumerate() {
            assert!(
                n.all(|c| usize::from(c) < i),
                "node {i} has a forward or self reference"
            );
        }
        RecExpr { nodes }
    }

    /// Adds a node whose children must already be in this expression,
    /// returning its index as an [`Id`].
    ///
    /// # Panics
    ///
    /// Panics if a child id is out of bounds.
    pub fn add(&mut self, node: L) -> Id {
        assert!(
            node.all(|c| usize::from(c) < self.nodes.len()),
            "child id out of bounds when adding node"
        );
        self.nodes.push(node);
        Id::from(self.nodes.len() - 1)
    }

    /// The nodes in insertion order.
    pub fn nodes(&self) -> &[L] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the expression has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root node id (the last node).
    ///
    /// # Panics
    ///
    /// Panics if the expression is empty.
    pub fn root(&self) -> Id {
        assert!(!self.nodes.is_empty(), "empty RecExpr has no root");
        Id::from(self.nodes.len() - 1)
    }

    /// Iterates over `(Id, &node)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Id, &L)> {
        self.nodes.iter().enumerate().map(|(i, n)| (Id::from(i), n))
    }

    /// Returns the number of nodes reachable from the root, counting shared
    /// nodes once. This is the "DAG size" as opposed to the tree size.
    pub fn dag_size(&self) -> usize {
        if self.nodes.is_empty() {
            return 0;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.root()];
        let mut count = 0;
        while let Some(id) = stack.pop() {
            let i = usize::from(id);
            if seen[i] {
                continue;
            }
            seen[i] = true;
            count += 1;
            self.nodes[i].for_each(|c| stack.push(c));
        }
        count
    }

    /// Builds a sub-expression rooted at `id` containing only reachable
    /// nodes (compacting away unreachable ones).
    pub fn extract(&self, id: Id) -> RecExpr<L> {
        let mut out = RecExpr::default();
        let mut map: std::collections::HashMap<Id, Id> = Default::default();
        self.extract_rec(id, &mut out, &mut map);
        out
    }

    fn extract_rec(
        &self,
        id: Id,
        out: &mut RecExpr<L>,
        map: &mut std::collections::HashMap<Id, Id>,
    ) -> Id {
        if let Some(&new) = map.get(&id) {
            return new;
        }
        let node = self[id].map_children(|c| self.extract_rec(c, out, map));
        let new = out.add(node);
        map.insert(id, new);
        new
    }

    fn fmt_node(&self, f: &mut fmt::Formatter<'_>, id: Id) -> fmt::Result {
        let node = &self[id];
        if node.is_leaf() {
            write!(f, "{}", node.display_op())
        } else {
            write!(f, "({}", node.display_op())?;
            for &c in node.children() {
                write!(f, " ")?;
                self.fmt_node(f, c)?;
            }
            write!(f, ")")
        }
    }
}

impl<L> Index<Id> for RecExpr<L> {
    type Output = L;
    fn index(&self, id: Id) -> &L {
        &self.nodes[usize::from(id)]
    }
}

impl<L: Language> Display for RecExpr<L> {
    /// Formats the expression rooted at the last node as an s-expression.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nodes.is_empty() {
            write!(f, "()")
        } else {
            self.fmt_node(f, self.root())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::test_lang::Math;
    use crate::Symbol;

    fn example() -> (RecExpr<Math>, Id) {
        // (a * 2) / 2
        let mut e = RecExpr::default();
        let a = e.add(Math::Sym(Symbol::new("a")));
        let two = e.add(Math::Num(2));
        let mul = e.add(Math::Mul([a, two]));
        let div = e.add(Math::Div([mul, two]));
        (e, div)
    }

    #[test]
    fn display_sexpr() {
        let (e, _) = example();
        assert_eq!(e.to_string(), "(/ (* a 2) 2)");
    }

    #[test]
    fn dag_size_counts_shared_nodes_once() {
        let (e, _) = example();
        // a, 2, mul, div — the `2` is shared between mul and div.
        assert_eq!(e.dag_size(), 4);
        assert_eq!(e.len(), 4);
    }

    #[test]
    fn extract_compacts() {
        let (mut e, _) = example();
        // Add an unreachable node.
        let dead = e.add(Math::Num(99));
        assert_eq!(e.len(), 5);
        let sub = e.extract(Id::from(3usize));
        assert_eq!(sub.len(), 4);
        assert_eq!(sub.to_string(), "(/ (* a 2) 2)");
        let tiny = e.extract(dead);
        assert_eq!(tiny.len(), 1);
    }

    #[test]
    #[should_panic]
    fn add_rejects_forward_reference() {
        let mut e = RecExpr::<Math>::default();
        e.add(Math::Add([Id::from(0usize), Id::from(1usize)]));
    }

    #[test]
    #[should_panic]
    fn from_nodes_rejects_self_reference() {
        let _ = RecExpr::from_nodes(vec![Math::Add([Id::from(0usize), Id::from(0usize)])]);
    }

    #[test]
    fn empty_expr() {
        let e = RecExpr::<Math>::default();
        assert!(e.is_empty());
        assert_eq!(e.to_string(), "()");
        assert_eq!(e.dag_size(), 0);
    }
}
