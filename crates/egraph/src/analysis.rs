//! E-class analyses: per-e-class semilattice data maintained incrementally.
//!
//! TENSAT uses an analysis to attach tensor shape / layout information to
//! every e-class so that rewrites can perform shape checking (paper §4, §6).

use crate::{EGraph, Id, Language};
use std::fmt::Debug;

/// Result of merging two analysis values, reporting which side changed.
///
/// `DidMerge(a_changed, b_changed)`: `a_changed` is true if the merged value
/// differs from the left (kept) input, `b_changed` if it differs from the
/// right (absorbed) input. The e-graph uses this to decide which parents
/// must have their data re-computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DidMerge(pub bool, pub bool);

impl std::ops::BitOr for DidMerge {
    type Output = DidMerge;
    fn bitor(self, rhs: DidMerge) -> DidMerge {
        DidMerge(self.0 || rhs.0, self.1 || rhs.1)
    }
}

/// Helper for implementing [`Analysis::merge`] when the data is a
/// semilattice expressed by an ordering: keeps `to` if `cmp` says it is
/// greater-or-equal, otherwise replaces it with `from`.
pub fn merge_max<D: Ord>(to: &mut D, from: D) -> DidMerge {
    if *to < from {
        *to = from;
        DidMerge(true, false)
    } else if *to == from {
        DidMerge(false, false)
    } else {
        DidMerge(false, true)
    }
}

/// An analysis over language `L`: a value of type `Data` attached to every
/// e-class, computed bottom-up from e-nodes and merged when classes are
/// unioned.
///
/// The semantics follow egg's e-class analyses: `make` computes the data for
/// a single e-node (reading children data through the e-graph), `merge`
/// combines the data of two classes being unioned (and must be a semilattice
/// join for the invariants to hold), and `modify` may inspect/extend the
/// e-graph after a class's data changes (e.g. constant folding).
pub trait Analysis<L: Language>: Sized {
    /// The per-e-class data.
    type Data: Debug + Clone;

    /// Computes the data for a newly added e-node whose children are already
    /// in the e-graph.
    fn make(egraph: &EGraph<L, Self>, enode: &L) -> Self::Data;

    /// Merges `from` into `to`, reporting which side changed.
    fn merge(&mut self, to: &mut Self::Data, from: Self::Data) -> DidMerge;

    /// Hook called after the data of class `id` is created or changed.
    /// The default does nothing.
    fn modify(_egraph: &mut EGraph<L, Self>, _id: Id) {}

    /// An interned *kind tag* summarizing a data value for cheap guard
    /// evaluation: the e-graph stores `kind_tag` of every class's data in a
    /// dense side table ([`EGraph::kind_tag`]), and tag-mask guards
    /// ([`crate::Guard::tags`]) test membership with one array read and one
    /// bit test — no dynamic dispatch, no borrow of the full data value.
    ///
    /// The tag must be a pure function of the data and **strictly less
    /// than 32** (tags index bits of a `u32` mask; out-of-range tags never
    /// match any mask). The default collapses everything to tag `0`, which
    /// makes tag guards useless but never wrong. The e-graph refreshes the
    /// stored tag whenever it writes class data (`add`, `union`, rebuild
    /// repair); an analysis that mutates class data by other means (e.g.
    /// through [`EGraph::eclass_mut`] inside [`Analysis::modify`]) must not
    /// change the value's kind tag.
    fn kind_tag(_data: &Self::Data) -> u8 {
        0
    }
}

/// The trivial analysis carrying no data.
impl<L: Language> Analysis<L> for () {
    type Data = ();
    fn make(_egraph: &EGraph<L, Self>, _enode: &L) -> Self::Data {}
    fn merge(&mut self, _to: &mut Self::Data, _from: Self::Data) -> DidMerge {
        DidMerge(false, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn didmerge_or() {
        assert_eq!(
            DidMerge(true, false) | DidMerge(false, true),
            DidMerge(true, true)
        );
        assert_eq!(
            DidMerge(false, false) | DidMerge(false, false),
            DidMerge(false, false)
        );
    }

    #[test]
    fn merge_max_keeps_larger() {
        let mut a = 3;
        assert_eq!(merge_max(&mut a, 5), DidMerge(true, false));
        assert_eq!(a, 5);
        assert_eq!(merge_max(&mut a, 2), DidMerge(false, true));
        assert_eq!(a, 5);
        assert_eq!(merge_max(&mut a, 5), DidMerge(false, false));
    }
}
