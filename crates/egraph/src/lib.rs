//! # tensat-egraph
//!
//! A from-scratch e-graph and equality-saturation engine, serving as the
//! substrate for the TENSAT reproduction (the original system builds on the
//! `egg` library; this crate reimplements the required functionality).
//!
//! An *e-graph* compactly represents a large set of equivalent terms: it is
//! a set of *e-classes*, each of which is a set of equivalent *e-nodes*; an
//! e-node is an operator whose children are e-classes. Rewrites add new
//! e-nodes and union e-classes instead of destructively replacing terms, so
//! applying one rewrite never "hides" another — this is what lets TENSAT
//! sidestep the phase-ordering problem of sequential graph substitution.
//!
//! ## Feature overview
//!
//! * [`EGraph`] — hash-consed e-node storage, unioning, congruence-closure
//!   rebuilding, e-class analyses, and a *filter set* used by TENSAT's cycle
//!   filtering.
//! * [`Pattern`] / [`Rewrite`] — e-matching with non-linear patterns and
//!   conditional rewrites. Patterns are compiled once into an abstract
//!   e-matching machine ([`Program`], de Moura & Bjørner-style) and searched
//!   through an operator index, with optional watermark-based incremental
//!   search ([`Pattern::search_since`]); the legacy recursive matcher
//!   remains available as a differential-testing oracle
//!   ([`Pattern::search_naive`]). Search can be sharded across threads
//!   ([`Pattern::search_parallel`], [`search_all_parallel`]) with
//!   bit-identical results, and rules can push per-variable *analysis
//!   guards* into the machine ([`Rewrite::with_guards`],
//!   [`GuardedProgram`]) so semantically dead bindings are pruned during
//!   matching instead of by a post-match condition.
//! * [`Runner`] — equality saturation with iteration / node / time limits
//!   and saturation detection.
//! * [`Extractor`] / [`DagExtractor`] — tree-greedy and global greedy DAG
//!   extraction with pluggable cost functions ([`CostFunction`] /
//!   [`DagCostFunction`]).
//!
//! ## Quick start
//!
//! ```
//! use tensat_egraph::{EGraph, Symbol, AstSize, Extractor};
//! use tensat_egraph::doctest_lang::SimpleMath as Math;
//!
//! let mut eg: EGraph<Math, ()> = EGraph::new(());
//! let a = eg.add(Math::Sym(Symbol::new("a")));
//! let two = eg.add(Math::Num(2));
//! let mul = eg.add(Math::Mul([a, two]));
//! let div = eg.add(Math::Div([mul, two]));
//! // Teach the e-graph that (/ (* a 2) 2) == a and extract the best term.
//! eg.union(div, a);
//! eg.rebuild();
//! let (cost, best) = Extractor::new(&eg, AstSize).find_best(div).unwrap();
//! assert_eq!((cost, best.to_string().as_str()), (1, "a"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analysis;
mod bitset;
mod eclass;
mod egraph;
mod extract;
mod language;
mod machine;
mod pattern;
mod recexpr;
mod rewrite;
mod runner;
mod unionfind;

pub use analysis::{merge_max, Analysis, DidMerge};
pub use bitset::BitSet;
pub use eclass::EClass;
pub use egraph::EGraph;
pub use extract::{AstDepth, AstSize, CostFunction, DagCostFunction, DagExtractor, Extractor};
pub use language::{Id, Language, Symbol};
pub use machine::{
    Guard, GuardFn, GuardedProgram, Instruction, Program, Reg, SearchQuery, TagMask,
    PARALLEL_SEARCH_SPAWN_THRESHOLD,
};
pub use pattern::{
    search_all_guarded_parallel, search_all_guarded_since_parallel,
    search_all_guarded_since_parallel_with_threshold, search_all_parallel,
    search_all_since_parallel, ENodeOrVar, Pattern, SearchMatches, Subst, Var,
};
pub use recexpr::RecExpr;
pub use rewrite::{stage_matches_parallel, ApplyLog, Condition, Rewrite, StagedApp};
pub use runner::{
    apply_threads_from_env, explorer_from_env, search_threads_from_env, Iteration, Runner,
    StopReason,
};
pub use unionfind::UnionFind;

/// A tiny arithmetic language exported solely so that doc examples across
/// the workspace have a concrete [`Language`] to work with. Not intended
/// for downstream use; the real tensor language lives in `tensat-ir`.
pub mod doctest_lang {
    use super::{Id, Language, Symbol};

    /// Simple arithmetic language used in documentation examples.
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
    pub enum SimpleMath {
        /// Integer literal.
        Num(i64),
        /// Named symbolic constant.
        Sym(Symbol),
        /// Addition; children: the two operands.
        Add([Id; 2]),
        /// Multiplication; children: the two operands.
        Mul([Id; 2]),
        /// Left shift; children: value and shift amount.
        Shl([Id; 2]),
        /// Division; children: dividend and divisor.
        Div([Id; 2]),
    }

    impl Language for SimpleMath {
        fn matches(&self, other: &Self) -> bool {
            match (self, other) {
                (SimpleMath::Num(a), SimpleMath::Num(b)) => a == b,
                (SimpleMath::Sym(a), SimpleMath::Sym(b)) => a == b,
                (SimpleMath::Add(_), SimpleMath::Add(_)) => true,
                (SimpleMath::Mul(_), SimpleMath::Mul(_)) => true,
                (SimpleMath::Shl(_), SimpleMath::Shl(_)) => true,
                (SimpleMath::Div(_), SimpleMath::Div(_)) => true,
                _ => false,
            }
        }
        fn children(&self) -> &[Id] {
            match self {
                SimpleMath::Num(_) | SimpleMath::Sym(_) => &[],
                SimpleMath::Add(c)
                | SimpleMath::Mul(c)
                | SimpleMath::Shl(c)
                | SimpleMath::Div(c) => c,
            }
        }
        fn children_mut(&mut self) -> &mut [Id] {
            match self {
                SimpleMath::Num(_) | SimpleMath::Sym(_) => &mut [],
                SimpleMath::Add(c)
                | SimpleMath::Mul(c)
                | SimpleMath::Shl(c)
                | SimpleMath::Div(c) => c,
            }
        }
        fn display_op(&self) -> String {
            match self {
                SimpleMath::Num(n) => n.to_string(),
                SimpleMath::Sym(s) => s.to_string(),
                SimpleMath::Add(_) => "+".into(),
                SimpleMath::Mul(_) => "*".into(),
                SimpleMath::Shl(_) => "<<".into(),
                SimpleMath::Div(_) => "/".into(),
            }
        }
    }
}
