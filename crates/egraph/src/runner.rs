//! The [`Runner`]: drives equality saturation until saturation or a limit
//! is hit, recording per-iteration statistics.

use crate::{Analysis, EGraph, Language, RecExpr, Rewrite};
use std::fmt::Debug;
use std::time::{Duration, Instant};

/// Why the runner stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// No rewrite changed the e-graph: every represented rewriting has been
    /// found (the fixpoint the paper calls *saturation*).
    Saturated,
    /// The configured iteration limit was reached.
    IterationLimit(usize),
    /// The configured e-node limit was reached.
    NodeLimit(usize),
    /// The configured wall-clock time limit was reached.
    TimeLimit(Duration),
}

/// Statistics for one exploration iteration.
#[derive(Debug, Clone)]
pub struct Iteration {
    /// Number of rewrite applications that changed the e-graph.
    pub applied: usize,
    /// Total matches found (before conditions and deduplication by union).
    pub total_matches: usize,
    /// E-nodes in the e-graph after this iteration.
    pub egraph_nodes: usize,
    /// E-classes in the e-graph after this iteration.
    pub egraph_classes: usize,
    /// Time spent searching for matches.
    pub search_time: Duration,
    /// Time spent applying matches.
    pub apply_time: Duration,
    /// Time spent rebuilding.
    pub rebuild_time: Duration,
}

/// Configuration and state for running equality saturation.
///
/// Mirrors egg's `Runner`: construct, configure limits with the builder
/// methods, seed the e-graph with expressions, then call [`Runner::run`].
///
/// # Examples
///
/// ```
/// use tensat_egraph::{Runner, Rewrite, Pattern, RecExpr, ENodeOrVar, Var, Symbol, AstSize, Extractor};
/// use tensat_egraph::doctest_lang::SimpleMath as Math;
/// // (* ?x 2) => (<< ?x 1)
/// let mut lhs = RecExpr::default();
/// let x = lhs.add(ENodeOrVar::Var(Var::new("x")));
/// let two = lhs.add(ENodeOrVar::ENode(Math::Num(2)));
/// lhs.add(ENodeOrVar::ENode(Math::Mul([x, two])));
/// let mut rhs = RecExpr::default();
/// let x2 = rhs.add(ENodeOrVar::Var(Var::new("x")));
/// let one = rhs.add(ENodeOrVar::ENode(Math::Num(1)));
/// rhs.add(ENodeOrVar::ENode(Math::Shl([x2, one])));
/// let rw: Rewrite<Math, ()> = Rewrite::new("strength", Pattern::new(lhs), Pattern::new(rhs));
///
/// let mut start = RecExpr::default();
/// let a = start.add(Math::Sym(Symbol::new("a")));
/// let t = start.add(Math::Num(2));
/// start.add(Math::Mul([a, t]));
///
/// let mut runner = Runner::new(()).with_expr(&start);
/// runner.run(&[rw]);
/// assert!(runner.stop_reason.is_some());
/// ```
pub struct Runner<L: Language, N: Analysis<L>> {
    /// The e-graph being grown.
    pub egraph: EGraph<L, N>,
    /// Ids of the root classes of the seeded expressions, in seeding order.
    pub roots: Vec<crate::Id>,
    /// Per-iteration statistics, filled in by [`Runner::run`].
    pub iterations: Vec<Iteration>,
    /// Why the run stopped (set by [`Runner::run`]).
    pub stop_reason: Option<StopReason>,
    iter_limit: usize,
    node_limit: usize,
    time_limit: Duration,
    incremental: bool,
}

impl<L: Language, N: Analysis<L>> Runner<L, N> {
    /// Creates a runner with an empty e-graph and default limits
    /// (30 iterations, 10 000 e-nodes, 5 seconds).
    pub fn new(analysis: N) -> Self {
        Runner {
            egraph: EGraph::new(analysis),
            roots: vec![],
            iterations: vec![],
            stop_reason: None,
            iter_limit: 30,
            node_limit: 10_000,
            time_limit: Duration::from_secs(5),
            incremental: false,
        }
    }

    /// Wraps an already-populated e-graph.
    pub fn with_egraph(egraph: EGraph<L, N>) -> Self {
        Runner {
            egraph,
            roots: vec![],
            iterations: vec![],
            stop_reason: None,
            iter_limit: 30,
            node_limit: 10_000,
            time_limit: Duration::from_secs(5),
            incremental: false,
        }
    }

    /// Adds an expression to the e-graph and records its root.
    pub fn with_expr(mut self, expr: &RecExpr<L>) -> Self {
        let root = self.egraph.add_expr(expr);
        self.egraph.rebuild();
        self.roots.push(root);
        self
    }

    /// Sets the iteration limit.
    pub fn with_iter_limit(mut self, limit: usize) -> Self {
        self.iter_limit = limit;
        self
    }

    /// Sets the e-node limit.
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.node_limit = limit;
        self
    }

    /// Sets the wall-clock time limit.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = limit;
        self
    }

    /// Enables incremental search: after the first iteration, each rewrite
    /// only searches e-classes touched since the previous iteration's
    /// watermark (see [`crate::Pattern::search_since`]). Matches that
    /// already existed were applied (or had their condition evaluated) in
    /// an earlier iteration and are not revisited.
    ///
    /// # Contract
    ///
    /// This is outcome-preserving for unconditional rewrites, and for
    /// conditional rewrites whose condition depends only on the matched
    /// e-classes (their nodes and analysis data): any event that can flip
    /// such a condition also touches those classes, so the match is
    /// re-surfaced. A condition reading *unrelated* global state (e.g.
    /// `egraph.total_number_of_nodes()`, wall-clock time) may flip without
    /// touching the match's classes — under incremental search such a
    /// rewrite can fire later than in a full-search run, or not at all.
    /// Keep the default (full search) for rewrites with such conditions.
    pub fn with_incremental_search(mut self, enabled: bool) -> Self {
        self.incremental = enabled;
        self
    }

    /// Runs equality saturation with the given rewrites until saturation or
    /// a limit is reached. Returns the stop reason.
    pub fn run(&mut self, rewrites: &[Rewrite<L, N>]) -> StopReason {
        let start = Instant::now();
        self.egraph.rebuild();
        let mut watermark: Option<u64> = None;
        let reason = loop {
            if self.iterations.len() >= self.iter_limit {
                break StopReason::IterationLimit(self.iter_limit);
            }
            if self.egraph.total_number_of_nodes() >= self.node_limit {
                break StopReason::NodeLimit(self.node_limit);
            }
            if start.elapsed() >= self.time_limit {
                break StopReason::TimeLimit(self.time_limit);
            }

            let search_start = Instant::now();
            let all_matches: Vec<_> = rewrites
                .iter()
                .map(|rw| match watermark {
                    Some(w) => rw.search_since(&self.egraph, w),
                    None => rw.search(&self.egraph),
                })
                .collect();
            let search_time = search_start.elapsed();
            let total_matches: usize = all_matches
                .iter()
                .flat_map(|ms| ms.iter().map(|m| m.substs.len()))
                .sum();
            if self.incremental {
                // Snapshot before this iteration mutates anything: the next
                // search revisits exactly the classes touched from here on.
                watermark = Some(self.egraph.watermark());
            }

            let nodes_before = self.egraph.total_number_of_nodes();
            let unions_before = self.egraph.union_count();

            let apply_start = Instant::now();
            let mut applied = 0;
            let mut hit_node_limit = false;
            for (rw, matches) in rewrites.iter().zip(&all_matches) {
                let (n, hit) = rw.apply_capped(&mut self.egraph, matches, self.node_limit);
                applied += n;
                if hit {
                    hit_node_limit = true;
                    break;
                }
            }
            let apply_time = apply_start.elapsed();

            let rebuild_start = Instant::now();
            self.egraph.rebuild();
            let rebuild_time = rebuild_start.elapsed();

            self.iterations.push(Iteration {
                applied,
                total_matches,
                egraph_nodes: self.egraph.total_number_of_nodes(),
                egraph_classes: self.egraph.number_of_classes(),
                search_time,
                apply_time,
                rebuild_time,
            });

            if hit_node_limit {
                break StopReason::NodeLimit(self.node_limit);
            }
            let changed = self.egraph.total_number_of_nodes() != nodes_before
                || self.egraph.union_count() != unions_before;
            if !changed {
                break StopReason::Saturated;
            }
        };
        self.stop_reason = Some(reason.clone());
        reason
    }

    /// Total time spent across recorded iterations.
    pub fn total_time(&self) -> Duration {
        self.iterations
            .iter()
            .map(|i| i.search_time + i.apply_time + i.rebuild_time)
            .sum()
    }
}

impl<L: Language, N: Analysis<L>> Debug for Runner<L, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runner")
            .field("egraph", &self.egraph)
            .field("iterations", &self.iterations.len())
            .field("stop_reason", &self.stop_reason)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::test_lang::Math;
    use crate::{AstSize, ENodeOrVar, Extractor, Pattern, Symbol, Var};

    fn var(v: &str) -> ENodeOrVar<Math> {
        ENodeOrVar::Var(Var::new(v))
    }
    fn node(n: Math) -> ENodeOrVar<Math> {
        ENodeOrVar::ENode(n)
    }

    fn pattern(build: impl FnOnce(&mut RecExpr<ENodeOrVar<Math>>)) -> Pattern<Math> {
        let mut ast = RecExpr::default();
        build(&mut ast);
        Pattern::new(ast)
    }

    /// The rules needed to prove (/ (* a 2) 2) == a from the paper's §2
    /// running example.
    fn rules() -> Vec<Rewrite<Math, ()>> {
        vec![
            // (* ?x 2) => (<< ?x 1)
            Rewrite::new(
                "strength-reduce",
                pattern(|p| {
                    let x = p.add(var("x"));
                    let two = p.add(node(Math::Num(2)));
                    p.add(node(Math::Mul([x, two])));
                }),
                pattern(|p| {
                    let x = p.add(var("x"));
                    let one = p.add(node(Math::Num(1)));
                    p.add(node(Math::Shl([x, one])));
                }),
            ),
            // (/ (* ?x ?y) ?y) => ?x
            Rewrite::new(
                "cancel-div",
                pattern(|p| {
                    let x = p.add(var("x"));
                    let y = p.add(var("y"));
                    let m = p.add(node(Math::Mul([x, y])));
                    let y2 = p.add(var("y"));
                    p.add(node(Math::Div([m, y2])));
                }),
                pattern(|p| {
                    p.add(var("x"));
                }),
            ),
        ]
    }

    fn start_expr() -> RecExpr<Math> {
        let mut e = RecExpr::default();
        let a = e.add(Math::Sym(Symbol::new("a")));
        let two = e.add(Math::Num(2));
        let m = e.add(Math::Mul([a, two]));
        e.add(Math::Div([m, two]));
        e
    }

    #[test]
    fn proves_paper_motivating_example() {
        // Even after strength reduction "hides" the (* a 2), the e-graph
        // still proves (/ (* a 2) 2) == a because nothing is destroyed.
        let mut runner = Runner::new(()).with_expr(&start_expr());
        let reason = runner.run(&rules());
        assert_eq!(reason, StopReason::Saturated);
        let root = runner.roots[0];
        let ex = Extractor::new(&runner.egraph, AstSize);
        let (cost, best) = ex.find_best(root).unwrap();
        assert_eq!(cost, 1);
        assert_eq!(best.to_string(), "a");
    }

    #[test]
    fn respects_iteration_limit() {
        let mut runner = Runner::new(()).with_expr(&start_expr()).with_iter_limit(0);
        let reason = runner.run(&rules());
        assert_eq!(reason, StopReason::IterationLimit(0));
        assert!(runner.iterations.is_empty());
    }

    #[test]
    fn respects_node_limit() {
        let mut runner = Runner::new(()).with_expr(&start_expr()).with_node_limit(1);
        let reason = runner.run(&rules());
        assert_eq!(reason, StopReason::NodeLimit(1));
    }

    #[test]
    fn respects_time_limit() {
        let mut runner = Runner::new(())
            .with_expr(&start_expr())
            .with_time_limit(Duration::from_secs(0));
        let reason = runner.run(&rules());
        assert_eq!(reason, StopReason::TimeLimit(Duration::from_secs(0)));
    }

    #[test]
    fn iteration_stats_are_recorded() {
        let mut runner = Runner::new(()).with_expr(&start_expr());
        runner.run(&rules());
        assert!(!runner.iterations.is_empty());
        let first = &runner.iterations[0];
        assert!(first.applied > 0);
        assert!(first.egraph_nodes >= 4);
        assert!(first.egraph_classes >= 3);
        // A real run does measurable search/apply/rebuild work, so the
        // recorded per-phase times must actually be populated.
        assert!(runner.total_time() > Duration::ZERO);
    }

    /// The node limit must bound e-graph growth *within* an iteration, not
    /// only between iterations: with many matches queued, the old
    /// once-per-iteration check overshot `node_limit` by the whole match
    /// batch. The capped apply loop stops within one application's worth of
    /// nodes (here the applier `(<< ?x 1)` adds at most 2 per application).
    #[test]
    fn node_limit_overshoot_is_bounded() {
        let mut e = RecExpr::default();
        let two = e.add(Math::Num(2));
        let mut outs = vec![];
        for i in 0..50 {
            let s = e.add(Math::Sym(Symbol::new(format!("v{i}"))));
            outs.push(e.add(Math::Mul([s, two])));
        }
        // Chain the outputs together so the expression is single-rooted.
        let mut acc = outs[0];
        for &o in &outs[1..] {
            acc = e.add(Math::Add([acc, o]));
        }

        let strength: Rewrite<Math, ()> = Rewrite::new(
            "strength-reduce",
            pattern(|p| {
                let x = p.add(var("x"));
                let two = p.add(node(Math::Num(2)));
                p.add(node(Math::Mul([x, two])));
            }),
            pattern(|p| {
                let x = p.add(var("x"));
                let one = p.add(node(Math::Num(1)));
                p.add(node(Math::Shl([x, one])));
            }),
        );

        let runner = Runner::new(()).with_expr(&e);
        let limit = runner.egraph.total_number_of_nodes() + 5;
        let mut runner = Runner::with_egraph(runner.egraph).with_node_limit(limit);
        let reason = runner.run(&[strength]);
        assert_eq!(reason, StopReason::NodeLimit(limit));
        // 50 pending matches would previously have overshot by ~50+ nodes;
        // now at most one application (2 nodes) past the limit.
        assert!(
            runner.egraph.total_number_of_nodes() <= limit + 2,
            "overshoot too large: {} nodes vs limit {}",
            runner.egraph.total_number_of_nodes(),
            limit
        );
        // The partial iteration is still recorded with populated stats.
        assert_eq!(runner.iterations.len(), 1);
    }

    /// Incremental (watermark-restricted) search must reach the same
    /// saturation result as full search on the paper's running example.
    #[test]
    fn incremental_search_reaches_same_result() {
        let mut runner = Runner::new(())
            .with_expr(&start_expr())
            .with_incremental_search(true);
        let reason = runner.run(&rules());
        assert_eq!(reason, StopReason::Saturated);
        let ex = Extractor::new(&runner.egraph, AstSize);
        let (cost, best) = ex.find_best(runner.roots[0]).unwrap();
        assert_eq!(cost, 1);
        assert_eq!(best.to_string(), "a");
    }

    #[test]
    fn commutativity_saturates() {
        // x + y => y + x on a tiny graph saturates quickly rather than
        // looping forever.
        let comm: Rewrite<Math, ()> = Rewrite::new(
            "commute-add",
            pattern(|p| {
                let x = p.add(var("x"));
                let y = p.add(var("y"));
                p.add(node(Math::Add([x, y])));
            }),
            pattern(|p| {
                let y = p.add(var("y"));
                let x = p.add(var("x"));
                p.add(node(Math::Add([x, y])));
            }),
        );
        let mut e = RecExpr::default();
        let a = e.add(Math::Sym(Symbol::new("a")));
        let b = e.add(Math::Sym(Symbol::new("b")));
        e.add(Math::Add([a, b]));
        let mut runner = Runner::new(()).with_expr(&e);
        let reason = runner.run(&[comm]);
        assert_eq!(reason, StopReason::Saturated);
        assert!(runner.iterations.len() <= 3);
    }
}
