//! The [`Runner`]: drives equality saturation until saturation or a limit
//! is hit, recording per-iteration statistics.

use crate::pattern::search_all_guarded_since_parallel;
use crate::rewrite::stage_matches_parallel;
use crate::{Analysis, EGraph, Language, RecExpr, Rewrite, SearchMatches};
use std::fmt::Debug;
use std::time::{Duration, Instant};

/// Reads the `TENSAT_SEARCH_THREADS` environment variable: the number of
/// threads the e-matching search phase should use. Returns `None` when the
/// variable is unset or does not parse to a positive integer.
///
/// [`Runner`] consults this at construction (so CI can force the parallel
/// search path without code changes), as does
/// `tensat_core::ExplorationConfig`'s default.
pub fn search_threads_from_env() -> Option<usize> {
    parse_thread_count(&std::env::var("TENSAT_SEARCH_THREADS").ok()?)
}

/// Reads the `TENSAT_APPLY_THREADS` environment variable: the number of
/// threads the staged apply phase ([`stage_matches_parallel`]) should use.
/// Returns `None` when the variable is unset or does not parse to a
/// positive integer — in which case the apply phase follows the search
/// thread setting.
///
/// Consulted at [`Runner`] construction and by
/// `tensat_core::ExplorationConfig`'s default, like
/// [`search_threads_from_env`].
pub fn apply_threads_from_env() -> Option<usize> {
    parse_thread_count(&std::env::var("TENSAT_APPLY_THREADS").ok()?)
}

fn parse_thread_count(raw: &str) -> Option<usize> {
    raw.trim().parse().ok().filter(|&n| n >= 1)
}

/// Reads the `TENSAT_EXPLORER` environment variable: the name of the
/// exploration strategy harnesses and tests want forced, mirroring
/// `TENSAT_EXTRACTOR` for extraction. Returns the raw trimmed name (or
/// `None` when unset or empty); parsing names into strategies is the
/// caller's job (`tensat_core::ExplorationMode::from_name`), which keeps
/// this crate agnostic of the strategy set. Read uncached, like
/// `TENSAT_SEARCH_THREADS`, so it can vary per run.
pub fn explorer_from_env() -> Option<String> {
    std::env::var("TENSAT_EXPLORER")
        .ok()
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
}

/// Why the runner stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// No rewrite changed the e-graph: every represented rewriting has been
    /// found (the fixpoint the paper calls *saturation*).
    Saturated,
    /// The configured iteration limit was reached.
    IterationLimit(usize),
    /// The configured e-node limit was reached.
    NodeLimit(usize),
    /// The configured wall-clock time limit was reached.
    TimeLimit(Duration),
}

/// Statistics for one exploration iteration.
#[derive(Debug, Clone)]
pub struct Iteration {
    /// Number of rewrite applications that changed the e-graph.
    pub applied: usize,
    /// Total matches found (before conditions and deduplication by union).
    pub total_matches: usize,
    /// E-nodes in the e-graph after this iteration.
    pub egraph_nodes: usize,
    /// E-classes in the e-graph after this iteration.
    pub egraph_classes: usize,
    /// Time spent searching for matches.
    pub search_time: Duration,
    /// Time spent applying matches.
    pub apply_time: Duration,
    /// Time spent rebuilding.
    pub rebuild_time: Duration,
}

/// Configuration and state for running equality saturation.
///
/// Mirrors egg's `Runner`: construct, configure limits with the builder
/// methods, seed the e-graph with expressions, then call [`Runner::run`].
///
/// # Examples
///
/// ```
/// use tensat_egraph::{Runner, Rewrite, Pattern, RecExpr, ENodeOrVar, Var, Symbol, AstSize, Extractor};
/// use tensat_egraph::doctest_lang::SimpleMath as Math;
/// // (* ?x 2) => (<< ?x 1)
/// let mut lhs = RecExpr::default();
/// let x = lhs.add(ENodeOrVar::Var(Var::new("x")));
/// let two = lhs.add(ENodeOrVar::ENode(Math::Num(2)));
/// lhs.add(ENodeOrVar::ENode(Math::Mul([x, two])));
/// let mut rhs = RecExpr::default();
/// let x2 = rhs.add(ENodeOrVar::Var(Var::new("x")));
/// let one = rhs.add(ENodeOrVar::ENode(Math::Num(1)));
/// rhs.add(ENodeOrVar::ENode(Math::Shl([x2, one])));
/// let rw: Rewrite<Math, ()> = Rewrite::new("strength", Pattern::new(lhs), Pattern::new(rhs));
///
/// let mut start = RecExpr::default();
/// let a = start.add(Math::Sym(Symbol::new("a")));
/// let t = start.add(Math::Num(2));
/// start.add(Math::Mul([a, t]));
///
/// let mut runner = Runner::new(()).with_expr(&start);
/// runner.run(&[rw]);
/// assert!(runner.stop_reason.is_some());
/// ```
pub struct Runner<L: Language, N: Analysis<L>> {
    /// The e-graph being grown.
    pub egraph: EGraph<L, N>,
    /// Ids of the root classes of the seeded expressions, in seeding order.
    pub roots: Vec<crate::Id>,
    /// Per-iteration statistics, filled in by [`Runner::run`].
    pub iterations: Vec<Iteration>,
    /// Why the run stopped (set by [`Runner::run`]).
    pub stop_reason: Option<StopReason>,
    iter_limit: usize,
    node_limit: usize,
    time_limit: Duration,
    incremental: bool,
    search_threads: usize,
    apply_threads: Option<usize>,
}

impl<L: Language, N: Analysis<L>> Runner<L, N> {
    /// Creates a runner with an empty e-graph and default limits
    /// (30 iterations, 10 000 e-nodes, 5 seconds). The search thread count
    /// defaults to the `TENSAT_SEARCH_THREADS` environment variable if set
    /// (see [`search_threads_from_env`]), otherwise 1 (sequential); the
    /// apply thread count defaults to `TENSAT_APPLY_THREADS` if set
    /// ([`apply_threads_from_env`]), otherwise it follows the search
    /// setting.
    pub fn new(analysis: N) -> Self {
        Self::with_egraph(EGraph::new(analysis))
    }

    /// Wraps an already-populated e-graph (defaults as for [`Runner::new`]).
    pub fn with_egraph(egraph: EGraph<L, N>) -> Self {
        Runner {
            egraph,
            roots: vec![],
            iterations: vec![],
            stop_reason: None,
            iter_limit: 30,
            node_limit: 10_000,
            time_limit: Duration::from_secs(5),
            incremental: false,
            search_threads: search_threads_from_env().unwrap_or(1),
            apply_threads: apply_threads_from_env(),
        }
    }

    /// Adds an expression to the e-graph and records its root.
    pub fn with_expr(mut self, expr: &RecExpr<L>) -> Self {
        let root = self.egraph.add_expr(expr);
        self.egraph.rebuild();
        self.roots.push(root);
        self
    }

    /// Sets the iteration limit.
    pub fn with_iter_limit(mut self, limit: usize) -> Self {
        self.iter_limit = limit;
        self
    }

    /// Sets the e-node limit.
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.node_limit = limit;
        self
    }

    /// Sets the wall-clock time limit.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = limit;
        self
    }

    /// Enables incremental search: after the first iteration, each rewrite
    /// only searches e-classes touched since the previous iteration's
    /// watermark (see [`crate::Pattern::search_since`]). Matches that
    /// already existed were applied (or had their condition evaluated) in
    /// an earlier iteration and are not revisited.
    ///
    /// # Contract
    ///
    /// This is outcome-preserving for unconditional rewrites, and for
    /// conditional rewrites whose condition depends only on the matched
    /// e-classes (their nodes and analysis data): any event that can flip
    /// such a condition also touches those classes, so the match is
    /// re-surfaced. A condition reading *unrelated* global state (e.g.
    /// `egraph.total_number_of_nodes()`, wall-clock time) may flip without
    /// touching the match's classes — under incremental search such a
    /// rewrite can fire later than in a full-search run, or not at all.
    /// Keep the default (full search) for rewrites with such conditions.
    pub fn with_incremental_search(mut self, enabled: bool) -> Self {
        self.incremental = enabled;
        self
    }

    /// Sets the number of threads used by the e-matching search phase.
    /// `1` (the default unless `TENSAT_SEARCH_THREADS` is set) runs the
    /// sequential driver; larger values shard candidate classes across
    /// scoped threads via [`crate::search_all_parallel`] with bit-identical
    /// results, so this only changes wall-clock time, never the outcome.
    pub fn with_search_threads(mut self, n_threads: usize) -> Self {
        self.search_threads = n_threads.max(1);
        self
    }

    /// Sets the number of threads used by the staged apply phase of
    /// [`Runner::run`]. Matches are staged against the read-only batch-start
    /// e-graph across scoped threads ([`stage_matches_parallel`]) and
    /// committed sequentially in deterministic order, so — like the search
    /// setting — this only changes wall-clock time, never the outcome.
    /// Unset (the default, unless `TENSAT_APPLY_THREADS` is in the
    /// environment) follows the search thread count.
    pub fn with_apply_threads(mut self, n_threads: usize) -> Self {
        self.apply_threads = Some(n_threads.max(1));
        self
    }

    /// Forks this runner: a fresh runner over a [`EGraph::snapshot`] of the
    /// e-graph with the same roots and limits but no recorded history.
    /// This is the snapshot/replay primitive guided exploration strategies
    /// use to expand several candidate states from one parent without the
    /// candidates observing each other's mutations.
    pub fn fork(&self) -> Self
    where
        EGraph<L, N>: Clone,
    {
        Runner {
            egraph: self.egraph.snapshot(),
            roots: self.roots.clone(),
            iterations: vec![],
            stop_reason: None,
            iter_limit: self.iter_limit,
            node_limit: self.node_limit,
            time_limit: self.time_limit,
            incremental: self.incremental,
            search_threads: self.search_threads,
            apply_threads: self.apply_threads,
        }
    }

    /// Extracts the best term for the first seeded root with the tree-greedy
    /// [`crate::Extractor`]. Panics if no expression was seeded.
    pub fn extract_tree<CF: crate::CostFunction<L>>(
        &self,
        cost_fn: CF,
    ) -> Option<(CF::Cost, RecExpr<L>)> {
        let root = *self
            .roots
            .first()
            .expect("Runner::extract_tree needs a seeded root");
        crate::Extractor::new(&self.egraph, cost_fn).find_best(root)
    }

    /// Extracts the best DAG for the first seeded root with the global
    /// greedy [`crate::DagExtractor`]. Panics if no expression was seeded.
    pub fn extract_dag<DF: crate::DagCostFunction<L>>(
        &self,
        cost_fn: DF,
    ) -> Option<(DF::Cost, RecExpr<L>)> {
        let root = *self
            .roots
            .first()
            .expect("Runner::extract_dag needs a seeded root");
        crate::DagExtractor::new(&self.egraph, cost_fn).find_best(root)
    }
}

impl<L, N> Runner<L, N>
where
    L: Language + Send + Sync,
    N: Analysis<L> + Sync,
    N::Data: Sync,
{
    /// Runs equality saturation with the given rewrites until saturation or
    /// a limit is reached. Returns the stop reason.
    ///
    /// Both phases of each iteration can use threads: search shards
    /// candidate classes ([`Runner::with_search_threads`]) and apply stages
    /// the match batch into per-worker logs against the read-only e-graph
    /// ([`Runner::with_apply_threads`], via [`stage_matches_parallel`])
    /// before one deterministic sequential commit pass
    /// ([`EGraph::commit_log`]) and the usual worklist rebuild. Both are
    /// bit-identical to their sequential counterparts for any thread count.
    ///
    /// (The `Sync` bounds let those phases shard the read-only e-graph
    /// across threads; every [`Language`] and [`Analysis`] in this
    /// workspace is plain data and satisfies them. A non-`Sync` language or
    /// analysis can still saturate via [`Runner::run_sequential`].)
    pub fn run(&mut self, rewrites: &[Rewrite<L, N>]) -> StopReason {
        let n_threads = self.search_threads;
        let apply_threads = self.apply_threads.unwrap_or(n_threads);
        self.run_with_phases(
            rewrites,
            |egraph, rewrites, watermark| {
                // The batch driver dispatches itself: with one thread it is
                // the per-pattern sequential search verbatim (and a
                // watermark of 0 is a full search, so `None` needs no
                // special case). Each rewrite contributes its guarded
                // program when it carries analysis guards, its plain
                // pattern program otherwise.
                let queries: Vec<_> = rewrites.iter().map(|rw| rw.searcher_query()).collect();
                search_all_guarded_since_parallel(
                    &queries,
                    egraph,
                    watermark.unwrap_or(0),
                    n_threads,
                )
            },
            |egraph, rewrites, all_matches, node_limit| {
                let batch: Vec<_> = rewrites
                    .iter()
                    .zip(all_matches.iter().map(Vec::as_slice))
                    .collect();
                let log = stage_matches_parallel(&batch, egraph, apply_threads, None);
                egraph.commit_log(&log, node_limit)
            },
        )
    }
}

/// One full-batch sequential search: the pre-parallel search phase.
fn sequential_search<L: Language, N: Analysis<L>>(
    egraph: &EGraph<L, N>,
    rewrites: &[Rewrite<L, N>],
    watermark: Option<u64>,
) -> Vec<Vec<crate::SearchMatches>> {
    rewrites
        .iter()
        .map(|rw| match watermark {
            Some(w) => rw.search_since(egraph, w),
            None => rw.search(egraph),
        })
        .collect()
}

/// One in-place sequential apply pass: the pre-staging apply phase, kept
/// as the non-`Sync` fallback (and, via the test battery, the oracle the
/// staged path is proven bit-identical against).
fn sequential_apply<L: Language, N: Analysis<L>>(
    egraph: &mut EGraph<L, N>,
    rewrites: &[Rewrite<L, N>],
    all_matches: &[Vec<SearchMatches>],
    node_limit: usize,
) -> (usize, bool) {
    let mut applied = 0;
    for (rw, matches) in rewrites.iter().zip(all_matches) {
        let (n, hit) = rw.apply_capped(egraph, matches, node_limit);
        applied += n;
        if hit {
            return (applied, true);
        }
    }
    (applied, false)
}

impl<L: Language, N: Analysis<L>> Runner<L, N> {
    /// Like [`Runner::run`] with one search/apply thread, but without the
    /// `Sync` bounds: languages or analyses containing non-`Sync` data
    /// (e.g. `Rc` caches) can still run equality saturation — they just
    /// cannot shard the search or stage the apply phase across threads.
    /// [`Runner::with_search_threads`] and [`Runner::with_apply_threads`]
    /// are ignored here.
    pub fn run_sequential(&mut self, rewrites: &[Rewrite<L, N>]) -> StopReason {
        self.run_with_phases(rewrites, sequential_search, sequential_apply)
    }

    /// The saturation loop, parameterized over the search and apply phases
    /// (the two parts that need `Sync` to parallelize). The apply callback
    /// consumes the whole match batch and returns `(effective applications,
    /// hit node limit)`, with the limit checked per application.
    fn run_with_phases(
        &mut self,
        rewrites: &[Rewrite<L, N>],
        search: impl Fn(&EGraph<L, N>, &[Rewrite<L, N>], Option<u64>) -> Vec<Vec<SearchMatches>>,
        apply: impl Fn(
            &mut EGraph<L, N>,
            &[Rewrite<L, N>],
            &[Vec<SearchMatches>],
            usize,
        ) -> (usize, bool),
    ) -> StopReason {
        let start = Instant::now();
        self.egraph.rebuild();
        let mut watermark: Option<u64> = None;
        let reason = loop {
            if self.iterations.len() >= self.iter_limit {
                break StopReason::IterationLimit(self.iter_limit);
            }
            if self.egraph.total_number_of_nodes() >= self.node_limit {
                break StopReason::NodeLimit(self.node_limit);
            }
            if start.elapsed() >= self.time_limit {
                break StopReason::TimeLimit(self.time_limit);
            }

            let search_start = Instant::now();
            let all_matches = search(&self.egraph, rewrites, watermark);
            let search_time = search_start.elapsed();
            let total_matches: usize = all_matches
                .iter()
                .flat_map(|ms| ms.iter().map(|m| m.substs.len()))
                .sum();
            if self.incremental {
                // Snapshot before this iteration mutates anything: the next
                // search revisits exactly the classes touched from here on.
                watermark = Some(self.egraph.watermark());
            }

            let nodes_before = self.egraph.total_number_of_nodes();
            let unions_before = self.egraph.union_count();

            let apply_start = Instant::now();
            let (applied, hit_node_limit) =
                apply(&mut self.egraph, rewrites, &all_matches, self.node_limit);
            let apply_time = apply_start.elapsed();

            let rebuild_start = Instant::now();
            self.egraph.rebuild();
            let rebuild_time = rebuild_start.elapsed();

            self.iterations.push(Iteration {
                applied,
                total_matches,
                egraph_nodes: self.egraph.total_number_of_nodes(),
                egraph_classes: self.egraph.number_of_classes(),
                search_time,
                apply_time,
                rebuild_time,
            });

            if hit_node_limit {
                break StopReason::NodeLimit(self.node_limit);
            }
            let changed = self.egraph.total_number_of_nodes() != nodes_before
                || self.egraph.union_count() != unions_before;
            if !changed {
                break StopReason::Saturated;
            }
        };
        self.stop_reason = Some(reason.clone());
        reason
    }
}

impl<L: Language, N: Analysis<L>> Runner<L, N> {
    /// Total time spent across recorded iterations.
    pub fn total_time(&self) -> Duration {
        self.iterations
            .iter()
            .map(|i| i.search_time + i.apply_time + i.rebuild_time)
            .sum()
    }
}

impl<L: Language, N: Analysis<L>> Debug for Runner<L, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runner")
            .field("egraph", &self.egraph)
            .field("iterations", &self.iterations.len())
            .field("stop_reason", &self.stop_reason)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::test_lang::Math;
    use crate::{AstSize, ENodeOrVar, Extractor, Pattern, Symbol, Var};

    fn var(v: &str) -> ENodeOrVar<Math> {
        ENodeOrVar::Var(Var::new(v))
    }
    fn node(n: Math) -> ENodeOrVar<Math> {
        ENodeOrVar::ENode(n)
    }

    fn pattern(build: impl FnOnce(&mut RecExpr<ENodeOrVar<Math>>)) -> Pattern<Math> {
        let mut ast = RecExpr::default();
        build(&mut ast);
        Pattern::new(ast)
    }

    /// The rules needed to prove (/ (* a 2) 2) == a from the paper's §2
    /// running example.
    fn rules() -> Vec<Rewrite<Math, ()>> {
        vec![
            // (* ?x 2) => (<< ?x 1)
            Rewrite::new(
                "strength-reduce",
                pattern(|p| {
                    let x = p.add(var("x"));
                    let two = p.add(node(Math::Num(2)));
                    p.add(node(Math::Mul([x, two])));
                }),
                pattern(|p| {
                    let x = p.add(var("x"));
                    let one = p.add(node(Math::Num(1)));
                    p.add(node(Math::Shl([x, one])));
                }),
            ),
            // (/ (* ?x ?y) ?y) => ?x
            Rewrite::new(
                "cancel-div",
                pattern(|p| {
                    let x = p.add(var("x"));
                    let y = p.add(var("y"));
                    let m = p.add(node(Math::Mul([x, y])));
                    let y2 = p.add(var("y"));
                    p.add(node(Math::Div([m, y2])));
                }),
                pattern(|p| {
                    p.add(var("x"));
                }),
            ),
        ]
    }

    fn start_expr() -> RecExpr<Math> {
        let mut e = RecExpr::default();
        let a = e.add(Math::Sym(Symbol::new("a")));
        let two = e.add(Math::Num(2));
        let m = e.add(Math::Mul([a, two]));
        e.add(Math::Div([m, two]));
        e
    }

    #[test]
    fn proves_paper_motivating_example() {
        // Even after strength reduction "hides" the (* a 2), the e-graph
        // still proves (/ (* a 2) 2) == a because nothing is destroyed.
        let mut runner = Runner::new(()).with_expr(&start_expr());
        let reason = runner.run(&rules());
        assert_eq!(reason, StopReason::Saturated);
        let root = runner.roots[0];
        let ex = Extractor::new(&runner.egraph, AstSize);
        let (cost, best) = ex.find_best(root).unwrap();
        assert_eq!(cost, 1);
        assert_eq!(best.to_string(), "a");
    }

    #[test]
    fn respects_iteration_limit() {
        let mut runner = Runner::new(()).with_expr(&start_expr()).with_iter_limit(0);
        let reason = runner.run(&rules());
        assert_eq!(reason, StopReason::IterationLimit(0));
        assert!(runner.iterations.is_empty());
    }

    #[test]
    fn respects_node_limit() {
        let mut runner = Runner::new(()).with_expr(&start_expr()).with_node_limit(1);
        let reason = runner.run(&rules());
        assert_eq!(reason, StopReason::NodeLimit(1));
    }

    #[test]
    fn respects_time_limit() {
        let mut runner = Runner::new(())
            .with_expr(&start_expr())
            .with_time_limit(Duration::from_secs(0));
        let reason = runner.run(&rules());
        assert_eq!(reason, StopReason::TimeLimit(Duration::from_secs(0)));
    }

    #[test]
    fn iteration_stats_are_recorded() {
        let mut runner = Runner::new(()).with_expr(&start_expr());
        runner.run(&rules());
        assert!(!runner.iterations.is_empty());
        let first = &runner.iterations[0];
        assert!(first.applied > 0);
        assert!(first.egraph_nodes >= 4);
        assert!(first.egraph_classes >= 3);
        // A real run does measurable search/apply/rebuild work, so the
        // recorded per-phase times must actually be populated.
        assert!(runner.total_time() > Duration::ZERO);
    }

    /// The node limit must bound e-graph growth *within* an iteration, not
    /// only between iterations: with many matches queued, the old
    /// once-per-iteration check overshot `node_limit` by the whole match
    /// batch. The capped apply loop stops within one application's worth of
    /// nodes (here the applier `(<< ?x 1)` adds at most 2 per application).
    #[test]
    fn node_limit_overshoot_is_bounded() {
        let mut e = RecExpr::default();
        let two = e.add(Math::Num(2));
        let mut outs = vec![];
        for i in 0..50 {
            let s = e.add(Math::Sym(Symbol::new(format!("v{i}"))));
            outs.push(e.add(Math::Mul([s, two])));
        }
        // Chain the outputs together so the expression is single-rooted.
        let mut acc = outs[0];
        for &o in &outs[1..] {
            acc = e.add(Math::Add([acc, o]));
        }

        let strength: Rewrite<Math, ()> = Rewrite::new(
            "strength-reduce",
            pattern(|p| {
                let x = p.add(var("x"));
                let two = p.add(node(Math::Num(2)));
                p.add(node(Math::Mul([x, two])));
            }),
            pattern(|p| {
                let x = p.add(var("x"));
                let one = p.add(node(Math::Num(1)));
                p.add(node(Math::Shl([x, one])));
            }),
        );

        let runner = Runner::new(()).with_expr(&e);
        let limit = runner.egraph.total_number_of_nodes() + 5;
        let mut runner = Runner::with_egraph(runner.egraph).with_node_limit(limit);
        let reason = runner.run(&[strength]);
        assert_eq!(reason, StopReason::NodeLimit(limit));
        // 50 pending matches would previously have overshot by ~50+ nodes;
        // now at most one application (2 nodes) past the limit.
        assert!(
            runner.egraph.total_number_of_nodes() <= limit + 2,
            "overshoot too large: {} nodes vs limit {}",
            runner.egraph.total_number_of_nodes(),
            limit
        );
        // The partial iteration is still recorded with populated stats.
        assert_eq!(runner.iterations.len(), 1);
    }

    /// Incremental (watermark-restricted) search must reach the same
    /// saturation result as full search on the paper's running example.
    #[test]
    fn incremental_search_reaches_same_result() {
        let mut runner = Runner::new(())
            .with_expr(&start_expr())
            .with_incremental_search(true);
        let reason = runner.run(&rules());
        assert_eq!(reason, StopReason::Saturated);
        let ex = Extractor::new(&runner.egraph, AstSize);
        let (cost, best) = ex.find_best(runner.roots[0]).unwrap();
        assert_eq!(cost, 1);
        assert_eq!(best.to_string(), "a");
    }

    /// Parallel search is bit-identical to sequential search, so a run with
    /// threads must reach the same fixpoint via the same iteration history.
    #[test]
    fn parallel_search_run_matches_sequential_run() {
        let mut sequential = Runner::new(())
            .with_expr(&start_expr())
            .with_search_threads(1);
        let mut parallel = Runner::new(())
            .with_expr(&start_expr())
            .with_search_threads(4);
        assert_eq!(sequential.run(&rules()), StopReason::Saturated);
        assert_eq!(parallel.run(&rules()), StopReason::Saturated);
        assert_eq!(sequential.iterations.len(), parallel.iterations.len());
        for (s, p) in sequential.iterations.iter().zip(&parallel.iterations) {
            assert_eq!(s.applied, p.applied);
            assert_eq!(s.total_matches, p.total_matches);
            assert_eq!(s.egraph_nodes, p.egraph_nodes);
            assert_eq!(s.egraph_classes, p.egraph_classes);
        }
        let ex = Extractor::new(&parallel.egraph, AstSize);
        let (cost, best) = ex.find_best(parallel.roots[0]).unwrap();
        assert_eq!((cost, best.to_string().as_str()), (1, "a"));
    }

    /// Threads compose with watermark-restricted incremental search: the
    /// parallel driver applies the same touched-class filter.
    #[test]
    fn parallel_incremental_search_reaches_same_result() {
        let mut runner = Runner::new(())
            .with_expr(&start_expr())
            .with_incremental_search(true)
            .with_search_threads(3);
        assert_eq!(runner.run(&rules()), StopReason::Saturated);
        let ex = Extractor::new(&runner.egraph, AstSize);
        let (cost, best) = ex.find_best(runner.roots[0]).unwrap();
        assert_eq!((cost, best.to_string().as_str()), (1, "a"));
    }

    #[test]
    fn thread_count_env_parsing() {
        // Exercise the parser (shared by TENSAT_SEARCH_THREADS and
        // TENSAT_APPLY_THREADS) directly rather than via `set_var` (tests
        // run concurrently; mutating the environment would race with other
        // `Runner::new` calls reading it).
        assert_eq!(parse_thread_count("4"), Some(4));
        assert_eq!(parse_thread_count(" 16\n"), Some(16));
        assert_eq!(parse_thread_count("0"), None, "0 threads is rejected");
        assert_eq!(parse_thread_count("auto"), None);
        assert_eq!(parse_thread_count(""), None);
    }

    /// The staged apply path must be bit-identical to the in-place
    /// sequential apply loop for any apply thread count: identical
    /// per-iteration stats and identical extraction results.
    #[test]
    fn staged_parallel_apply_matches_sequential_apply() {
        let mut baseline = Runner::new(()).with_expr(&start_expr());
        assert_eq!(baseline.run_sequential(&rules()), StopReason::Saturated);
        for threads in [1, 4] {
            let mut staged = Runner::new(())
                .with_expr(&start_expr())
                .with_apply_threads(threads);
            assert_eq!(staged.run(&rules()), StopReason::Saturated);
            assert_eq!(baseline.iterations.len(), staged.iterations.len());
            for (s, p) in baseline.iterations.iter().zip(&staged.iterations) {
                assert_eq!(s.applied, p.applied, "threads={threads}");
                assert_eq!(s.total_matches, p.total_matches, "threads={threads}");
                assert_eq!(s.egraph_nodes, p.egraph_nodes, "threads={threads}");
                assert_eq!(s.egraph_classes, p.egraph_classes, "threads={threads}");
            }
            let ex = Extractor::new(&staged.egraph, AstSize);
            let (cost, best) = ex.find_best(staged.roots[0]).unwrap();
            assert_eq!((cost, best.to_string().as_str()), (1, "a"));
        }
    }

    /// `run_sequential` must keep working for non-`Sync` analyses (the
    /// `Sync` bounds on `run` exist only for the sharded search phase).
    #[test]
    fn non_sync_analysis_can_run_sequentially() {
        use crate::DidMerge;
        use std::rc::Rc;

        /// Analysis whose data is an `Rc` — deliberately not `Sync`.
        #[derive(Clone, Default)]
        struct RcAnalysis;
        impl Analysis<Math> for RcAnalysis {
            type Data = Rc<usize>;
            fn make(_egraph: &EGraph<Math, Self>, enode: &Math) -> Self::Data {
                Rc::new(enode.children().len())
            }
            fn merge(&mut self, _to: &mut Self::Data, _from: Self::Data) -> DidMerge {
                DidMerge(false, false)
            }
        }

        let comm: Rewrite<Math, RcAnalysis> = Rewrite::new(
            "commute-add",
            pattern(|p| {
                let x = p.add(var("x"));
                let y = p.add(var("y"));
                p.add(node(Math::Add([x, y])));
            }),
            pattern(|p| {
                let y = p.add(var("y"));
                let x = p.add(var("x"));
                p.add(node(Math::Add([y, x])));
            }),
        );
        let mut e = RecExpr::default();
        let a = e.add(Math::Sym(Symbol::new("a")));
        let b = e.add(Math::Sym(Symbol::new("b")));
        e.add(Math::Add([a, b]));
        let mut runner = Runner::new(RcAnalysis).with_expr(&e);
        assert_eq!(runner.run_sequential(&[comm]), StopReason::Saturated);
    }

    #[test]
    fn fork_isolates_the_parent_runner() {
        // Snapshot/replay primitive for guided exploration: a forked
        // runner can grow independently without the parent observing any
        // change, while inheriting roots and limits.
        let comm: Rewrite<Math, ()> = Rewrite::new(
            "commute-add",
            pattern(|p| {
                let x = p.add(var("x"));
                let y = p.add(var("y"));
                p.add(node(Math::Add([x, y])));
            }),
            pattern(|p| {
                let y = p.add(var("y"));
                let x = p.add(var("x"));
                p.add(node(Math::Add([y, x])));
            }),
        );
        let mut e = RecExpr::default();
        let a = e.add(Math::Sym(Symbol::new("a")));
        let b = e.add(Math::Sym(Symbol::new("b")));
        e.add(Math::Add([a, b]));
        let runner = Runner::new(()).with_expr(&e).with_iter_limit(4);
        let parent_nodes = runner.egraph.total_number_of_nodes();

        let mut child = runner.fork();
        assert_eq!(child.roots, runner.roots);
        assert_eq!(child.egraph.total_number_of_nodes(), parent_nodes);
        assert_eq!(child.run(&[comm]), StopReason::Saturated);

        // The child saturated and grew; the parent is untouched.
        assert!(child.egraph.total_number_of_nodes() > parent_nodes);
        assert_eq!(runner.egraph.total_number_of_nodes(), parent_nodes);
        assert!(runner.iterations.is_empty());
    }

    #[test]
    fn commutativity_saturates() {
        // x + y => y + x on a tiny graph saturates quickly rather than
        // looping forever.
        let comm: Rewrite<Math, ()> = Rewrite::new(
            "commute-add",
            pattern(|p| {
                let x = p.add(var("x"));
                let y = p.add(var("y"));
                p.add(node(Math::Add([x, y])));
            }),
            pattern(|p| {
                let y = p.add(var("y"));
                let x = p.add(var("x"));
                p.add(node(Math::Add([y, x])));
            }),
        );
        let mut e = RecExpr::default();
        let a = e.add(Math::Sym(Symbol::new("a")));
        let b = e.add(Math::Sym(Symbol::new("b")));
        e.add(Math::Add([a, b]));
        let mut runner = Runner::new(()).with_expr(&e);
        let reason = runner.run(&[comm]);
        assert_eq!(reason, StopReason::Saturated);
        assert!(runner.iterations.len() <= 3);
    }
}
