//! Core identifiers and the [`Language`] trait that user-defined operator
//! sets implement to be stored in an [`EGraph`](crate::EGraph).

use std::fmt::{self, Debug, Display};
use std::hash::Hash;
use std::sync::{OnceLock, RwLock};

/// An identifier for an e-class (or, inside a [`RecExpr`](crate::RecExpr),
/// an index of a previously added node).
///
/// `Id`s are small, dense, copyable handles. They are only meaningful with
/// respect to the e-graph (or expression) that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Id(u32);

impl From<usize> for Id {
    fn from(v: usize) -> Self {
        Id(u32::try_from(v).expect("id overflow: more than u32::MAX e-classes"))
    }
}

impl From<Id> for usize {
    fn from(id: Id) -> Self {
        id.0 as usize
    }
}

impl Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An interned string.
///
/// Symbols are cheap to copy, compare, and hash; the string data lives in a
/// process-wide interner for the lifetime of the program. Used for operator
/// names, variable names, tensor names, and encoded shape strings.
///
/// # Examples
///
/// ```
/// use tensat_egraph::Symbol;
/// let a = Symbol::new("input_1");
/// let b = Symbol::new("input_1");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "input_1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(Interner::default()))
}

#[derive(Default)]
struct Interner {
    map: std::collections::HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

impl Symbol {
    /// Interns `s` (if not already interned) and returns its symbol.
    pub fn new(s: impl AsRef<str>) -> Self {
        let s = s.as_ref();
        {
            let guard = interner().read().unwrap();
            if let Some(&id) = guard.map.get(s) {
                return Symbol(id);
            }
        }
        let mut guard = interner().write().unwrap();
        if let Some(&id) = guard.map.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = guard.strings.len() as u32;
        guard.strings.push(leaked);
        guard.map.insert(leaked, id);
        Symbol(id)
    }

    /// Returns the interned string.
    pub fn as_str(&self) -> &'static str {
        interner().read().unwrap().strings[self.0 as usize]
    }
}

impl Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl<S: AsRef<str>> From<S> for Symbol {
    fn from(s: S) -> Self {
        Symbol::new(s)
    }
}

/// A node in a term language: an operator together with its ordered
/// children, which are [`Id`]s pointing at e-classes (in an e-graph) or at
/// earlier nodes (in a [`RecExpr`](crate::RecExpr)).
///
/// Implementors are plain data: the trait only asks for access to the
/// children and an operator-level equality check ([`Language::matches`])
/// that ignores the children.
pub trait Language: Debug + Clone + Eq + Ord + Hash {
    /// True if `self` and `other` have the same operator (and therefore the
    /// same arity), ignoring the children ids.
    ///
    /// `matches` must be at least as strict as "same enum variant": two
    /// nodes with different [`Language::discriminant`]s must never match.
    /// (The e-graph's operator index and the compiled e-matching machine
    /// rely on this to prune candidate classes without losing matches.)
    fn matches(&self, other: &Self) -> bool;

    /// A coarse operator key used by the e-graph's operator index
    /// ([`crate::EGraph::classes_with_op`]) to restrict pattern search to
    /// classes that contain at least one node with the same key as the
    /// pattern root.
    ///
    /// The default implementation uses the enum discriminant, which is
    /// correct for any enum-shaped language: it may be *coarser* than
    /// [`Language::matches`] (e.g. all integer literals share a
    /// discriminant) — the matcher re-checks `matches` on every candidate
    /// node — but must never be *finer*.
    fn discriminant(&self) -> std::mem::Discriminant<Self>
    where
        Self: Sized,
    {
        std::mem::discriminant(self)
    }

    /// The ordered children of this node.
    fn children(&self) -> &[Id];

    /// Mutable access to the ordered children of this node.
    fn children_mut(&mut self) -> &mut [Id];

    /// A human-readable name for the operator (no children), used by
    /// `Display` impls, dot export, and pattern parsing.
    fn display_op(&self) -> String;

    /// True if this node has no children.
    fn is_leaf(&self) -> bool {
        self.children().is_empty()
    }

    /// Calls `f` on each child.
    fn for_each(&self, mut f: impl FnMut(Id)) {
        self.children().iter().copied().for_each(&mut f)
    }

    /// Calls `f` on each child, allowing mutation.
    fn for_each_mut(&mut self, mut f: impl FnMut(&mut Id)) {
        self.children_mut().iter_mut().for_each(&mut f)
    }

    /// Replaces every child `c` with `f(c)` in place.
    fn update_children(&mut self, mut f: impl FnMut(Id) -> Id) {
        self.for_each_mut(|c| *c = f(*c))
    }

    /// Returns a copy with every child `c` replaced by `f(c)`.
    fn map_children(&self, f: impl FnMut(Id) -> Id) -> Self {
        let mut new = self.clone();
        new.update_children(f);
        new
    }

    /// True if all children satisfy `f`.
    fn all(&self, mut f: impl FnMut(Id) -> bool) -> bool {
        self.children().iter().all(|&c| f(c))
    }

    /// True if any child satisfies `f`.
    fn any(&self, mut f: impl FnMut(Id) -> bool) -> bool {
        self.children().iter().any(|&c| f(c))
    }
}

#[cfg(test)]
pub(crate) mod test_lang {
    //! A tiny arithmetic language used throughout the crate's unit tests.
    use super::*;

    /// Simple arithmetic language: constants, symbols, `+`, `*`, `<<`, `/`.
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
    pub enum Math {
        Num(i64),
        Sym(Symbol),
        Add([Id; 2]),
        Mul([Id; 2]),
        Shl([Id; 2]),
        Div([Id; 2]),
    }

    impl Language for Math {
        fn matches(&self, other: &Self) -> bool {
            match (self, other) {
                (Math::Num(a), Math::Num(b)) => a == b,
                (Math::Sym(a), Math::Sym(b)) => a == b,
                (Math::Add(_), Math::Add(_)) => true,
                (Math::Mul(_), Math::Mul(_)) => true,
                (Math::Shl(_), Math::Shl(_)) => true,
                (Math::Div(_), Math::Div(_)) => true,
                _ => false,
            }
        }

        fn children(&self) -> &[Id] {
            match self {
                Math::Num(_) | Math::Sym(_) => &[],
                Math::Add(c) | Math::Mul(c) | Math::Shl(c) | Math::Div(c) => c,
            }
        }

        fn children_mut(&mut self) -> &mut [Id] {
            match self {
                Math::Num(_) | Math::Sym(_) => &mut [],
                Math::Add(c) | Math::Mul(c) | Math::Shl(c) | Math::Div(c) => c,
            }
        }

        fn display_op(&self) -> String {
            match self {
                Math::Num(n) => n.to_string(),
                Math::Sym(s) => s.to_string(),
                Math::Add(_) => "+".into(),
                Math::Mul(_) => "*".into(),
                Math::Shl(_) => "<<".into(),
                Math::Div(_) => "/".into(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_lang::Math;
    use super::*;

    #[test]
    fn id_roundtrip() {
        let id = Id::from(42usize);
        assert_eq!(usize::from(id), 42);
        assert_eq!(id.to_string(), "42");
    }

    #[test]
    fn symbols_are_interned() {
        let a = Symbol::new("hello");
        let b = Symbol::new("hello");
        let c = Symbol::new("world");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "hello");
        assert_eq!(c.to_string(), "world");
    }

    #[test]
    fn symbols_from_str() {
        let a: Symbol = "abc".into();
        assert_eq!(a, Symbol::new("abc"));
    }

    #[test]
    fn language_helpers() {
        let n = Math::Add([Id::from(0usize), Id::from(1usize)]);
        assert!(!n.is_leaf());
        assert_eq!(n.children(), &[Id::from(0usize), Id::from(1usize)]);
        let mapped = n.map_children(|c| Id::from(usize::from(c) + 10));
        assert_eq!(mapped.children(), &[Id::from(10usize), Id::from(11usize)]);
        assert!(n.matches(&mapped));
        assert!(!n.matches(&Math::Num(3)));
        assert!(Math::Num(7).is_leaf());
        assert!(n.all(|c| usize::from(c) < 2));
        assert!(n.any(|c| usize::from(c) == 1));
    }
}
