//! Patterns over a [`Language`]: terms with variables, searched for in an
//! e-graph (e-matching) and instantiated to apply rewrites.

use crate::machine::{Program, SearchQuery};
use crate::{Analysis, EGraph, Id, Language, RecExpr, Symbol};
use std::fmt::{self, Display};
use std::sync::OnceLock;

/// A pattern variable, written `?name` in the textual form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub Symbol);

impl Var {
    /// Creates a variable from a name (with or without the leading `?`).
    pub fn new(name: impl AsRef<str>) -> Self {
        let name = name.as_ref();
        let name = name.strip_prefix('?').unwrap_or(name);
        Var(Symbol::new(name))
    }
}

impl Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// A node in a pattern: either a concrete language node (whose children are
/// pattern ids) or a variable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ENodeOrVar<L> {
    /// A concrete operator node.
    ENode(L),
    /// A pattern variable that matches any e-class.
    Var(Var),
}

impl<L: Language> Language for ENodeOrVar<L> {
    fn matches(&self, other: &Self) -> bool {
        match (self, other) {
            (ENodeOrVar::ENode(a), ENodeOrVar::ENode(b)) => a.matches(b),
            (ENodeOrVar::Var(a), ENodeOrVar::Var(b)) => a == b,
            _ => false,
        }
    }
    fn children(&self) -> &[Id] {
        match self {
            ENodeOrVar::ENode(n) => n.children(),
            ENodeOrVar::Var(_) => &[],
        }
    }
    fn children_mut(&mut self) -> &mut [Id] {
        match self {
            ENodeOrVar::ENode(n) => n.children_mut(),
            ENodeOrVar::Var(_) => &mut [],
        }
    }
    fn display_op(&self) -> String {
        match self {
            ENodeOrVar::ENode(n) => n.display_op(),
            ENodeOrVar::Var(v) => v.to_string(),
        }
    }
}

/// A variable binding produced by a successful match: maps pattern
/// variables to e-class ids.
///
/// The `Ord` instance (lexicographic over the binding list) exists so match
/// lists can be sorted before deduplication; it is not otherwise meaningful.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Subst {
    vec: Vec<(Var, Id)>,
}

impl Subst {
    /// An empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a binding, returning the previous id if the variable was
    /// already bound.
    pub fn insert(&mut self, var: Var, id: Id) -> Option<Id> {
        for pair in &mut self.vec {
            if pair.0 == var {
                return Some(std::mem::replace(&mut pair.1, id));
            }
        }
        self.vec.push((var, id));
        None
    }

    /// Looks up a binding.
    pub fn get(&self, var: Var) -> Option<Id> {
        self.vec.iter().find(|(v, _)| *v == var).map(|(_, id)| *id)
    }

    /// Iterates over `(variable, e-class)` bindings.
    pub fn iter(&self) -> impl Iterator<Item = (Var, Id)> + '_ {
        self.vec.iter().copied()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True if no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }
}

impl std::ops::Index<Var> for Subst {
    type Output = Id;
    fn index(&self, var: Var) -> &Id {
        self.vec
            .iter()
            .find(|(v, _)| *v == var)
            .map(|(_, id)| id)
            .unwrap_or_else(|| panic!("variable {var} not bound in substitution"))
    }
}

/// All matches of a pattern inside one e-class.
///
/// The `PartialEq` instance is exact (same class id, same substitution
/// list in the same order); differential tests use it to check that the
/// parallel search driver is bit-identical to the sequential one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchMatches {
    /// The e-class in which the pattern root matched.
    pub eclass: Id,
    /// The substitutions (one per distinct way the pattern matched).
    pub substs: Vec<Subst>,
}

/// A pattern: a term with variables, stored as a [`RecExpr`] of
/// [`ENodeOrVar`] whose root is the last node.
///
/// # Examples
///
/// ```
/// use tensat_egraph::{EGraph, Pattern, RecExpr, Id, Symbol, Var, ENodeOrVar};
/// use tensat_egraph::doctest_lang::SimpleMath as Math;
/// // Build the pattern (* ?x 2) programmatically.
/// let mut ast = RecExpr::<ENodeOrVar<Math>>::default();
/// let x = ast.add(ENodeOrVar::Var(Var::new("x")));
/// let two = ast.add(ENodeOrVar::ENode(Math::Num(2)));
/// ast.add(ENodeOrVar::ENode(Math::Mul([x, two])));
/// let pat = Pattern::new(ast);
///
/// let mut eg: EGraph<Math, ()> = EGraph::new(());
/// let a = eg.add(Math::Sym(Symbol::new("a")));
/// let two = eg.add(Math::Num(2));
/// let root = eg.add(Math::Mul([a, two]));
/// eg.rebuild();
/// let matches = pat.search(&eg);
/// assert_eq!(matches.len(), 1);
/// assert_eq!(matches[0].eclass, eg.find(root));
/// assert_eq!(matches[0].substs[0][Var::new("x")], eg.find(a));
/// ```
#[derive(Debug, Clone)]
pub struct Pattern<L> {
    /// The pattern term; the root is the last node.
    pub ast: RecExpr<ENodeOrVar<L>>,
    /// The compiled e-matching program, built lazily on first search and
    /// cached for the lifetime of the pattern (clones inherit the cache).
    program: OnceLock<Program<L>>,
}

impl<L: Language> PartialEq for Pattern<L> {
    fn eq(&self, other: &Self) -> bool {
        self.ast == other.ast
    }
}

impl<L: Language> Eq for Pattern<L> {}

impl<L: Language> Pattern<L> {
    /// Creates a pattern from its AST.
    ///
    /// # Panics
    ///
    /// Panics if the AST is empty.
    pub fn new(ast: RecExpr<ENodeOrVar<L>>) -> Self {
        assert!(!ast.is_empty(), "empty pattern");
        Pattern {
            ast,
            program: OnceLock::new(),
        }
    }

    /// The compiled e-matching program for this pattern, compiling it on
    /// first use and caching the result.
    pub fn program(&self) -> &Program<L> {
        self.program.get_or_init(|| Program::compile(&self.ast))
    }

    /// Forces compilation of the e-matching program now (e.g. at rule
    /// construction time) instead of on the first search.
    pub fn precompile(&self) {
        let _ = self.program();
    }

    /// The root id within the pattern AST.
    pub fn root(&self) -> Id {
        self.ast.root()
    }

    /// The distinct variables appearing in the pattern, in first-occurrence
    /// order.
    pub fn vars(&self) -> Vec<Var> {
        let mut vars = vec![];
        for (_, node) in self.ast.iter() {
            if let ENodeOrVar::Var(v) = node {
                if !vars.contains(v) {
                    vars.push(*v);
                }
            }
        }
        vars
    }

    /// Searches the entire e-graph for matches of this pattern, using the
    /// compiled e-matching machine and the operator index: only classes
    /// containing a node with the pattern root's operator are visited.
    ///
    /// Filtered e-nodes (see [`EGraph::filter_node`]) are never matched.
    ///
    /// # Examples
    ///
    /// ```
    /// use tensat_egraph::{EGraph, Pattern, RecExpr, Symbol, Var, ENodeOrVar};
    /// use tensat_egraph::doctest_lang::SimpleMath as Math;
    /// // Pattern (+ ?x ?x): non-linear, matches only same-class operands.
    /// let mut ast = RecExpr::<ENodeOrVar<Math>>::default();
    /// let x1 = ast.add(ENodeOrVar::Var(Var::new("x")));
    /// let x2 = ast.add(ENodeOrVar::Var(Var::new("x")));
    /// ast.add(ENodeOrVar::ENode(Math::Add([x1, x2])));
    /// let pat = Pattern::new(ast);
    ///
    /// let mut eg: EGraph<Math, ()> = EGraph::new(());
    /// let a = eg.add(Math::Sym(Symbol::new("a")));
    /// let b = eg.add(Math::Sym(Symbol::new("b")));
    /// eg.add(Math::Add([a, b])); // does not match
    /// let good = eg.add(Math::Add([a, a])); // matches
    /// eg.rebuild(); // search requires a clean e-graph
    /// let matches = pat.search(&eg);
    /// assert_eq!(matches.len(), 1);
    /// assert_eq!(matches[0].eclass, eg.find(good));
    /// ```
    ///
    /// # Panics
    ///
    /// Debug-asserts that the e-graph is clean ([`EGraph::is_clean`]):
    /// searching a dirty e-graph silently returns stale or incomplete
    /// matches, so callers must [`EGraph::rebuild`] first.
    pub fn search<N: Analysis<L>>(&self, egraph: &EGraph<L, N>) -> Vec<SearchMatches> {
        self.program().search(egraph)
    }

    /// Like [`Pattern::search`], but skips e-classes whose match set cannot
    /// have changed since `watermark`, a snapshot of [`EGraph::watermark`]
    /// taken on an earlier clean e-graph. Touch stamps are propagated to
    /// transitive parents during [`EGraph::rebuild`], so a class is revisited
    /// whenever *any* class reachable from it gained nodes or was merged.
    ///
    /// The result is every match rooted in a *touched* class — a superset
    /// of the matches created since the snapshot (pre-existing matches in a
    /// touched class are returned again). Matches in untouched classes are
    /// skipped but never lost: they were returned by the earlier search.
    pub fn search_since<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        watermark: u64,
    ) -> Vec<SearchMatches> {
        self.program().search_since(egraph, watermark)
    }

    /// Parallel version of [`Pattern::search`]: shards the candidate
    /// classes (from the operator index) into contiguous chunks searched by
    /// `n_threads` scoped threads, then merges the chunk outputs in chunk
    /// order — the result is bit-identical to [`Pattern::search`].
    /// `n_threads <= 1` runs the sequential driver. To search many patterns
    /// with cross-pattern load balancing, prefer [`crate::search_all_parallel`].
    ///
    /// # Panics
    ///
    /// Debug-asserts that the e-graph is clean (see [`Pattern::search`]).
    pub fn search_parallel<N>(&self, egraph: &EGraph<L, N>, n_threads: usize) -> Vec<SearchMatches>
    where
        L: Sync,
        N: Analysis<L> + Sync,
        N::Data: Sync,
    {
        self.program().search_parallel(egraph, n_threads)
    }

    /// Parallel version of [`Pattern::search_since`]; see
    /// [`Pattern::search_parallel`].
    pub fn search_since_parallel<N>(
        &self,
        egraph: &EGraph<L, N>,
        watermark: u64,
        n_threads: usize,
    ) -> Vec<SearchMatches>
    where
        L: Sync,
        N: Analysis<L> + Sync,
        N::Data: Sync,
    {
        self.program()
            .search_since_parallel(egraph, watermark, n_threads)
    }

    /// Searches a single e-class for matches of this pattern's root, using
    /// the compiled e-matching machine.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the e-graph is clean (see [`Pattern::search`]).
    pub fn search_eclass<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        eclass: Id,
    ) -> Option<SearchMatches> {
        self.program().search_eclass(egraph, eclass)
    }

    /// Reference implementation of [`Pattern::search`]: the legacy
    /// recursive matcher, kept as the oracle for differential tests and
    /// benchmarks. It scans every class (no operator index) and clones
    /// substitution vectors per branch. Unlike [`Pattern::search`] it does
    /// not assert cleanliness, so tests can exercise dirty-graph behaviour.
    pub fn search_naive<N: Analysis<L>>(&self, egraph: &EGraph<L, N>) -> Vec<SearchMatches> {
        let mut out = vec![];
        for class in egraph.classes() {
            if let Some(m) = self.search_eclass_naive(egraph, class.id) {
                out.push(m);
            }
        }
        out
    }

    /// Reference implementation of [`Pattern::search_eclass`] (see
    /// [`Pattern::search_naive`]).
    pub fn search_eclass_naive<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        eclass: Id,
    ) -> Option<SearchMatches> {
        let eclass = egraph.find(eclass);
        let substs = self.match_in_class(egraph, self.root(), eclass, Subst::new());
        if substs.is_empty() {
            None
        } else {
            Some(SearchMatches { eclass, substs })
        }
    }

    fn match_in_class<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        pat_id: Id,
        eclass: Id,
        subst: Subst,
    ) -> Vec<Subst> {
        let eclass = egraph.find(eclass);
        match &self.ast[pat_id] {
            ENodeOrVar::Var(v) => match subst.get(*v) {
                Some(bound) if egraph.find(bound) == eclass => vec![subst],
                Some(_) => vec![],
                None => {
                    let mut s = subst;
                    s.insert(*v, eclass);
                    vec![s]
                }
            },
            ENodeOrVar::ENode(pnode) => {
                let mut results = vec![];
                for enode in egraph.eclass(eclass).iter() {
                    if egraph.is_filtered(enode) {
                        continue;
                    }
                    if !pnode.matches(enode) {
                        continue;
                    }
                    debug_assert_eq!(pnode.children().len(), enode.children().len());
                    let mut partial = vec![subst.clone()];
                    for (&pchild, &echild) in pnode.children().iter().zip(enode.children()) {
                        let mut next = vec![];
                        for s in partial {
                            next.extend(self.match_in_class(egraph, pchild, echild, s));
                        }
                        partial = next;
                        if partial.is_empty() {
                            break;
                        }
                    }
                    results.extend(partial);
                }
                // Deduplicate identical substitutions (can arise when the
                // same term is reachable through multiple e-nodes, e.g. via
                // not-yet-canonicalized duplicates on a dirty e-graph).
                // Duplicates are not necessarily adjacent, so sort first —
                // a bare `dedup()` on the unsorted list let non-adjacent
                // duplicates through, inflating match counts and triggering
                // redundant rewrite applications.
                results.sort_unstable();
                results.dedup();
                results
            }
        }
    }

    /// Instantiates the pattern under `subst`, adding the resulting term to
    /// the e-graph and returning the id of the class containing its root.
    ///
    /// # Panics
    ///
    /// Panics if a pattern variable is unbound in `subst`.
    pub fn instantiate<N: Analysis<L>>(&self, egraph: &mut EGraph<L, N>, subst: &Subst) -> Id {
        let mut ids: Vec<Id> = Vec::with_capacity(self.ast.len());
        for (_, node) in self.ast.iter() {
            let id = match node {
                ENodeOrVar::Var(v) => subst
                    .get(*v)
                    .unwrap_or_else(|| panic!("unbound pattern variable {v}")),
                ENodeOrVar::ENode(n) => {
                    let concrete = n.map_children(|c| ids[usize::from(c)]);
                    egraph.add(concrete)
                }
            };
            ids.push(id);
        }
        *ids.last().expect("pattern is non-empty")
    }

    /// Applies the pattern as a rewrite right-hand side: instantiates it and
    /// unions the result with `eclass`. Returns the canonical id and whether
    /// the union changed anything.
    pub fn apply_one<N: Analysis<L>>(
        &self,
        egraph: &mut EGraph<L, N>,
        eclass: Id,
        subst: &Subst,
    ) -> (Id, bool) {
        let new_root = self.instantiate(egraph, subst);
        egraph.union(eclass, new_root)
    }

    /// Converts a concrete expression into a (variable-free) pattern.
    pub fn from_expr(expr: &RecExpr<L>) -> Self {
        let mut ast = RecExpr::default();
        for (_, node) in expr.iter() {
            ast.add(ENodeOrVar::ENode(node.clone()));
        }
        Pattern::new(ast)
    }
}

impl<L: Language> Display for Pattern<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.ast)
    }
}

/// Searches a whole batch of patterns over one e-graph in parallel,
/// returning one match list per pattern (same order as `patterns`).
///
/// All patterns' candidate-class chunks share a single work queue, so
/// threads load-balance *across* rules: one rule with a huge candidate set
/// does not serialize the batch. Every returned match list is bit-identical
/// to the corresponding sequential [`Pattern::search`]. `n_threads <= 1`
/// runs the sequential driver for each pattern in order.
///
/// # Panics
///
/// Debug-asserts that the e-graph is clean (see [`Pattern::search`]).
pub fn search_all_parallel<L, N>(
    patterns: &[&Pattern<L>],
    egraph: &EGraph<L, N>,
    n_threads: usize,
) -> Vec<Vec<SearchMatches>>
where
    L: Language + Sync,
    N: Analysis<L> + Sync,
    N::Data: Sync,
{
    search_all_since_parallel(patterns, egraph, 0, n_threads)
}

/// Watermark-restricted version of [`search_all_parallel`]: classes
/// untouched since `watermark` are skipped per pattern, exactly as
/// [`Pattern::search_since`] does.
pub fn search_all_since_parallel<L, N>(
    patterns: &[&Pattern<L>],
    egraph: &EGraph<L, N>,
    watermark: u64,
    n_threads: usize,
) -> Vec<Vec<SearchMatches>>
where
    L: Language + Sync,
    N: Analysis<L> + Sync,
    N::Data: Sync,
{
    let queries: Vec<SearchQuery<'_, L, N::Data>> = patterns
        .iter()
        .map(|p| (p.program(), &[] as &[_]))
        .collect();
    crate::machine::search_programs_since_parallel(&queries, egraph, watermark, n_threads)
}

/// Guarded version of [`search_all_parallel`]: searches a batch of compiled
/// `(program, guard table)` queries — e.g. built from
/// [`GuardedProgram::query`](crate::GuardedProgram::query) or
/// [`Rewrite::searcher_query`](crate::Rewrite::searcher_query); an empty
/// table means the program is unguarded — returning one match list per
/// query, each bit-identical to that query's sequential search.
///
/// # Panics
///
/// Panics if a guard table does not match its program's guarded variables;
/// debug-asserts that the e-graph is clean (see [`Pattern::search`]).
pub fn search_all_guarded_parallel<L, N>(
    queries: &[SearchQuery<'_, L, N::Data>],
    egraph: &EGraph<L, N>,
    n_threads: usize,
) -> Vec<Vec<SearchMatches>>
where
    L: Language + Sync,
    N: Analysis<L> + Sync,
    N::Data: Sync,
{
    search_all_guarded_since_parallel(queries, egraph, 0, n_threads)
}

/// Watermark-restricted version of [`search_all_guarded_parallel`].
pub fn search_all_guarded_since_parallel<L, N>(
    queries: &[SearchQuery<'_, L, N::Data>],
    egraph: &EGraph<L, N>,
    watermark: u64,
    n_threads: usize,
) -> Vec<Vec<SearchMatches>>
where
    L: Language + Sync,
    N: Analysis<L> + Sync,
    N::Data: Sync,
{
    crate::machine::search_programs_since_parallel(queries, egraph, watermark, n_threads)
}

/// [`search_all_guarded_since_parallel`] with an explicit spawn threshold
/// instead of the default
/// [`PARALLEL_SEARCH_SPAWN_THRESHOLD`](crate::PARALLEL_SEARCH_SPAWN_THRESHOLD):
/// batches with fewer candidate classes run on the sequential driver even
/// when `n_threads > 1`, because thread spawn + merge overhead exceeds the
/// work. `0` forces the parallel driver for any nonempty batch and
/// `usize::MAX` forces the sequential driver; every dispatch produces
/// bit-identical match lists, which the regression tests pin.
pub fn search_all_guarded_since_parallel_with_threshold<L, N>(
    queries: &[SearchQuery<'_, L, N::Data>],
    egraph: &EGraph<L, N>,
    watermark: u64,
    n_threads: usize,
    spawn_threshold: usize,
) -> Vec<Vec<SearchMatches>>
where
    L: Language + Sync,
    N: Analysis<L> + Sync,
    N::Data: Sync,
{
    crate::machine::search_programs_since_parallel_with_threshold(
        queries,
        egraph,
        watermark,
        n_threads,
        spawn_threshold,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::language::test_lang::Math;

    fn sym(s: &str) -> Math {
        Math::Sym(Symbol::new(s))
    }

    /// Pattern (* ?x 2)
    fn mul_by_two_pattern() -> Pattern<Math> {
        let mut ast = RecExpr::default();
        let x = ast.add(ENodeOrVar::Var(Var::new("x")));
        let two = ast.add(ENodeOrVar::ENode(Math::Num(2)));
        ast.add(ENodeOrVar::ENode(Math::Mul([x, two])));
        Pattern::new(ast)
    }

    #[test]
    fn var_display_and_parse() {
        assert_eq!(Var::new("?x"), Var::new("x"));
        assert_eq!(Var::new("x").to_string(), "?x");
    }

    #[test]
    fn search_finds_single_match() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let root = eg.add(Math::Mul([a, two]));
        eg.rebuild();
        let pat = mul_by_two_pattern();
        let ms = pat.search(&eg);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].eclass, eg.find(root));
        assert_eq!(ms[0].substs.len(), 1);
        assert_eq!(ms[0].substs[0][Var::new("x")], eg.find(a));
    }

    #[test]
    fn search_respects_nonlinear_variables() {
        // Pattern (+ ?x ?x) must only match when both children are the same
        // e-class.
        let mut ast = RecExpr::default();
        let x1 = ast.add(ENodeOrVar::Var(Var::new("x")));
        let x2 = ast.add(ENodeOrVar::Var(Var::new("x")));
        ast.add(ENodeOrVar::ENode(Math::Add([x1, x2])));
        let pat = Pattern::new(ast);

        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let b = eg.add(sym("b"));
        eg.add(Math::Add([a, b]));
        let good = eg.add(Math::Add([a, a]));
        eg.rebuild();
        let ms = pat.search(&eg);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].eclass, eg.find(good));
    }

    #[test]
    fn search_skips_filtered_nodes() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        eg.add(Math::Mul([a, two]));
        eg.rebuild();
        let pat = mul_by_two_pattern();
        assert_eq!(pat.search(&eg).len(), 1);
        eg.filter_node(&Math::Mul([a, two]));
        assert_eq!(pat.search(&eg).len(), 0);
    }

    #[test]
    fn apply_adds_and_unions() {
        // Rewrite (* ?x 2) => (<< ?x 1)
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        let mul = eg.add(Math::Mul([a, two]));
        eg.rebuild();

        let lhs = mul_by_two_pattern();
        let mut rhs_ast = RecExpr::default();
        let x = rhs_ast.add(ENodeOrVar::Var(Var::new("x")));
        let one = rhs_ast.add(ENodeOrVar::ENode(Math::Num(1)));
        rhs_ast.add(ENodeOrVar::ENode(Math::Shl([x, one])));
        let rhs = Pattern::new(rhs_ast);

        let ms = lhs.search(&eg);
        for m in ms {
            for s in &m.substs {
                rhs.apply_one(&mut eg, m.eclass, s);
            }
        }
        eg.rebuild();
        let shl = eg.lookup(&Math::Shl([a, eg.lookup(&Math::Num(1)).unwrap()]));
        assert_eq!(shl.map(|i| eg.find(i)), Some(eg.find(mul)));
    }

    #[test]
    fn pattern_vars_in_order() {
        let mut ast = RecExpr::default();
        let y = ast.add(ENodeOrVar::Var(Var::new("y")));
        let x = ast.add(ENodeOrVar::Var(Var::new("x")));
        ast.add(ENodeOrVar::ENode(Math::Add([y, x])));
        let pat = Pattern::new(ast);
        assert_eq!(pat.vars(), vec![Var::new("y"), Var::new("x")]);
        assert_eq!(pat.to_string(), "(+ ?y ?x)");
    }

    #[test]
    fn from_expr_matches_itself() {
        let mut e = RecExpr::default();
        let a = e.add(sym("a"));
        let two = e.add(Math::Num(2));
        e.add(Math::Mul([a, two]));
        let pat = Pattern::from_expr(&e);
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let root = eg.add_expr(&e);
        eg.rebuild();
        let ms = pat.search(&eg);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].eclass, eg.find(root));
    }

    /// Regression test for the duplicate-substitution bug: `dedup()` on an
    /// unsorted match list only removes *adjacent* duplicates. A dirty
    /// class holding a not-yet-canonicalized duplicate node separated from
    /// its twin by an unrelated node produces the duplicate substitution in
    /// a non-adjacent position; the old code returned 3 substitutions, the
    /// sort-then-dedup fix returns 2.
    #[test]
    fn nonadjacent_duplicate_substs_are_deduped() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let b = eg.add(sym("b"));
        let c = eg.add(sym("c"));
        let d = eg.add(sym("d"));
        let a2 = eg.add(sym("a2"));
        let m1 = eg.add(Math::Mul([a, b]));
        let m2 = eg.add(Math::Mul([c, d]));
        let m3 = eg.add(Math::Mul([a2, b]));
        // Make `a2` equivalent to `a` (so Mul([a2, b]) canonicalizes to
        // Mul([a, b])) and put all three Mul nodes in one class, WITHOUT
        // rebuilding: the class node list is now
        // [Mul(a,b), Mul(c,d), Mul(a2,b)] — a non-adjacent duplicate pair.
        eg.union(a, a2);
        eg.union(m1, m2);
        eg.union(m1, m3);

        let mut ast = RecExpr::default();
        let x = ast.add(ENodeOrVar::Var(Var::new("x")));
        let y = ast.add(ENodeOrVar::Var(Var::new("y")));
        ast.add(ENodeOrVar::ENode(Math::Mul([x, y])));
        let pat = Pattern::new(ast);

        // The naive oracle tolerates dirty e-graphs; its dedup must remove
        // the non-adjacent duplicate.
        let m = pat.search_eclass_naive(&eg, m1).expect("matches exist");
        assert_eq!(
            m.substs.len(),
            2,
            "expected {{x:a,y:b}} and {{x:c,y:d}} exactly once each, got {:?}",
            m.substs
        );
    }

    /// The dirty-e-graph check is a `debug_assert!`, so the panic only
    /// exists in debug builds; release builds skip the test rather than
    /// fail waiting for a panic that cannot happen.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "dirty")]
    fn search_on_dirty_egraph_asserts() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let two = eg.add(Math::Num(2));
        eg.add(Math::Mul([a, two]));
        let b = eg.add(sym("b"));
        eg.union(a, b); // leaves the e-graph dirty
        let _ = mul_by_two_pattern().search(&eg);
    }

    /// Debug-build-only for the same reason as
    /// [`search_on_dirty_egraph_asserts`].
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "dirty")]
    fn search_eclass_on_dirty_egraph_asserts() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let a = eg.add(sym("a"));
        let b = eg.add(sym("b"));
        eg.union(a, b);
        let _ = mul_by_two_pattern().search_eclass(&eg, a);
    }

    /// Searching with a fresh watermark returns nothing; after a union deep
    /// below a potential match root, the root class must be revisited even
    /// though its own node list never changed (touch propagation).
    #[test]
    fn search_since_sees_matches_from_deep_changes() {
        let mut eg: EGraph<Math, ()> = EGraph::new(());
        let p = eg.add(sym("p"));
        let two = eg.add(Math::Num(2));
        let root = eg.add(Math::Mul([p, two]));
        eg.rebuild();

        // Pattern (* (+ ?x ?y) 2): no Add anywhere yet.
        let mut ast = RecExpr::default();
        let x = ast.add(ENodeOrVar::Var(Var::new("x")));
        let y = ast.add(ENodeOrVar::Var(Var::new("y")));
        let add = ast.add(ENodeOrVar::ENode(Math::Add([x, y])));
        let two_p = ast.add(ENodeOrVar::ENode(Math::Num(2)));
        ast.add(ENodeOrVar::ENode(Math::Mul([add, two_p])));
        let pat = Pattern::new(ast);
        assert!(pat.search(&eg).is_empty());

        let watermark = eg.watermark();
        assert!(
            pat.search_since(&eg, watermark).is_empty(),
            "nothing touched since the watermark"
        );

        // Teach the e-graph p == (+ a b). The Mul class gains no node, but
        // its child class does, so the Mul class counts as touched.
        let a = eg.add(sym("a"));
        let b = eg.add(sym("b"));
        let sum = eg.add(Math::Add([a, b]));
        eg.union(p, sum);
        eg.rebuild();

        let ms = pat.search_since(&eg, watermark);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].eclass, eg.find(root));
        assert_eq!(ms[0].substs[0][Var::new("x")], eg.find(a));
    }

    #[test]
    fn subst_insert_and_index() {
        let mut s = Subst::new();
        assert!(s.is_empty());
        assert_eq!(s.insert(Var::new("x"), Id::from(1usize)), None);
        assert_eq!(
            s.insert(Var::new("x"), Id::from(2usize)),
            Some(Id::from(1usize))
        );
        assert_eq!(s[Var::new("x")], Id::from(2usize));
        assert_eq!(s.get(Var::new("y")), None);
        assert_eq!(s.len(), 1);
    }
}
