//! A union-find (disjoint-set) data structure over [`Id`]s.
//!
//! The e-graph uses this to maintain the equivalence relation over
//! e-classes. Union by size with path compression gives effectively
//! constant-time `find`.

use crate::Id;

/// A disjoint-set forest over densely allocated [`Id`]s.
///
/// New sets are created with [`UnionFind::make_set`]; two sets are merged
/// with [`UnionFind::union`], which returns the canonical representative
/// chosen for the merged set (the root of the larger set).
///
/// # Examples
///
/// ```
/// use tensat_egraph::UnionFind;
/// let mut uf = UnionFind::default();
/// let a = uf.make_set();
/// let b = uf.make_set();
/// assert_ne!(uf.find(a), uf.find(b));
/// let root = uf.union(a, b);
/// assert_eq!(uf.find(a), root);
/// assert_eq!(uf.find(b), root);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnionFind {
    parents: Vec<Id>,
    sizes: Vec<u32>,
}

impl UnionFind {
    /// Creates an empty union-find.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a fresh singleton set and returns its [`Id`].
    pub fn make_set(&mut self) -> Id {
        let id = Id::from(self.parents.len());
        self.parents.push(id);
        self.sizes.push(1);
        id
    }

    /// The total number of ids ever created (not the number of sets).
    pub fn size(&self) -> usize {
        self.parents.len()
    }

    /// Returns the number of distinct sets.
    pub fn num_sets(&self) -> usize {
        (0..self.parents.len())
            .filter(|&i| self.parents[i] == Id::from(i))
            .count()
    }

    #[inline]
    fn parent(&self, id: Id) -> Id {
        self.parents[usize::from(id)]
    }

    /// Finds the canonical representative of the set containing `id`,
    /// without path compression.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by this union-find.
    #[inline]
    pub fn find(&self, mut id: Id) -> Id {
        assert!(
            usize::from(id) < self.parents.len(),
            "id {id:?} out of bounds for union-find of size {}",
            self.parents.len()
        );
        while self.parent(id) != id {
            id = self.parent(id);
        }
        id
    }

    /// Finds the canonical representative, compressing paths along the way.
    pub fn find_mut(&mut self, mut id: Id) -> Id {
        let root = self.find(id);
        // Path compression: point every node on the path directly at the root.
        while self.parent(id) != root {
            let next = self.parent(id);
            self.parents[usize::from(id)] = root;
            id = next;
        }
        root
    }

    /// Returns true if `a` and `b` are in the same set.
    pub fn in_same_set(&self, a: Id, b: Id) -> bool {
        self.find(a) == self.find(b)
    }

    /// Merges the sets containing `a` and `b`, returning the canonical
    /// representative of the merged set. Union by size: the larger set's
    /// root wins.
    pub fn union(&mut self, a: Id, b: Id) -> Id {
        let a = self.find_mut(a);
        let b = self.find_mut(b);
        if a == b {
            return a;
        }
        let (root, child) = if self.sizes[usize::from(a)] >= self.sizes[usize::from(b)] {
            (a, b)
        } else {
            (b, a)
        };
        self.parents[usize::from(child)] = root;
        self.sizes[usize::from(root)] += self.sizes[usize::from(child)];
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> (UnionFind, Vec<Id>) {
        let mut uf = UnionFind::new();
        let ids = (0..n).map(|_| uf.make_set()).collect();
        (uf, ids)
    }

    #[test]
    fn singletons_are_their_own_roots() {
        let (uf, ids) = ids(10);
        for &id in &ids {
            assert_eq!(uf.find(id), id);
        }
        assert_eq!(uf.num_sets(), 10);
    }

    #[test]
    fn union_merges_sets() {
        let (mut uf, ids) = ids(6);
        uf.union(ids[0], ids[1]);
        uf.union(ids[2], ids[3]);
        uf.union(ids[0], ids[2]);
        assert!(uf.in_same_set(ids[1], ids[3]));
        assert!(!uf.in_same_set(ids[1], ids[4]));
        assert_eq!(uf.num_sets(), 3);
    }

    #[test]
    fn union_is_idempotent() {
        let (mut uf, ids) = ids(2);
        let r1 = uf.union(ids[0], ids[1]);
        let r2 = uf.union(ids[0], ids[1]);
        assert_eq!(r1, r2);
        assert_eq!(uf.num_sets(), 1);
    }

    #[test]
    fn union_by_size_keeps_bigger_root() {
        let (mut uf, ids) = ids(5);
        // Build a set of size 3 rooted somewhere among {0,1,2}.
        uf.union(ids[0], ids[1]);
        let big_root = uf.union(ids[0], ids[2]);
        // Singleton 3 joins: the big root must remain canonical.
        let root = uf.union(ids[3], ids[0]);
        assert_eq!(root, big_root);
    }

    #[test]
    fn find_mut_compresses_paths() {
        let (mut uf, ids) = ids(64);
        for w in ids.windows(2) {
            uf.union(w[0], w[1]);
        }
        let root = uf.find(ids[0]);
        for &id in &ids {
            assert_eq!(uf.find_mut(id), root);
        }
        // After compression every element points directly at the root.
        for &id in &ids {
            assert_eq!(uf.parent(id), root);
        }
    }

    #[test]
    #[should_panic]
    fn find_out_of_bounds_panics() {
        let (uf, _) = ids(1);
        let _ = uf.find(Id::from(5usize));
    }
}
