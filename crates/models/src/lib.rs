//! # tensat-models
//!
//! Scaled, structurally faithful replicas of the seven inference graphs the
//! paper evaluates on (§6.1): NasRNN, BERT, ResNeXt-50, NasNet-A,
//! SqueezeNet, VGG-19 and Inception-v3 (plus ResNet-50, which the paper
//! reports gains nothing on a T4).
//!
//! The replicas keep the *structures* that TENSAT's rewrites exploit —
//! parallel matmuls/convolutions sharing inputs, conv+activation chains,
//! multi-branch cells — while scaling channel counts and layer counts down
//! so that the e-graphs and extraction ILPs stay laptop-sized. Every
//! constructor takes a [`ModelScale`] so the harness can sweep sizes.
//!
//! ```
//! use tensat_models::{bert, ModelScale};
//! let graph = bert(ModelScale::default());
//! assert!(graph.len() > 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tensat_egraph::{Id, RecExpr};
use tensat_ir::{Activation, GraphBuilder, Padding, TensorLang};

/// Controls how large the replica models are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelScale {
    /// Number of repeated blocks / cells / layers.
    pub blocks: usize,
    /// Base hidden size / channel count.
    pub hidden: i64,
    /// Batch size (sequence length for NLP models).
    pub batch: i64,
}

impl Default for ModelScale {
    fn default() -> Self {
        ModelScale {
            blocks: 2,
            hidden: 128,
            batch: 8,
        }
    }
}

impl ModelScale {
    /// A smaller scale for quick tests.
    pub fn tiny() -> Self {
        ModelScale {
            blocks: 1,
            hidden: 64,
            batch: 4,
        }
    }
}

/// The list of benchmark names in the order used by the paper's tables.
pub const BENCHMARKS: &[&str] = &[
    "NasRNN",
    "BERT",
    "ResNeXt-50",
    "NasNet-A",
    "SqueezeNet",
    "VGG-19",
    "Inception-v3",
];

/// Builds a benchmark graph by name (see [`BENCHMARKS`]).
///
/// # Panics
///
/// Panics if the name is unknown.
pub fn build_benchmark(name: &str, scale: ModelScale) -> RecExpr<TensorLang> {
    match name {
        "NasRNN" => nasrnn(scale),
        "BERT" => bert(scale),
        "ResNeXt-50" => resnext50(scale),
        "NasNet-A" => nasnet_a(scale),
        "SqueezeNet" => squeezenet(scale),
        "VGG-19" => vgg19(scale),
        "Inception-v3" => inception_v3(scale),
        "ResNet-50" => resnet50(scale),
        other => panic!("unknown benchmark `{other}`"),
    }
}

/// NasRNN: an RNN cell discovered by neural architecture search. Each step
/// applies many matmuls to the same hidden state and combines them with
/// element-wise operations and activations — the ideal case for matmul
/// merging (paper Fig. 11), which is why TENSAT finds its largest speedups
/// here.
pub fn nasrnn(scale: ModelScale) -> RecExpr<TensorLang> {
    let mut g = GraphBuilder::new();
    let h = scale.hidden;
    let mut hidden = g.input("h0", &[scale.batch, h]);
    let x = g.input("x", &[scale.batch, h]);
    for step in 0..scale.blocks {
        // Eight parallel matmuls: four on the hidden state, four on the input.
        let mut gates = vec![];
        for i in 0..4 {
            let wh = g.weight(&format!("wh_{step}_{i}"), &[h, h]);
            let wx = g.weight(&format!("wx_{step}_{i}"), &[h, h]);
            let mh = g.matmul(hidden, wh);
            let mx = g.matmul(x, wx);
            let sum = g.ewadd(mh, mx);
            let act = match i % 2 {
                0 => g.relu(sum),
                _ => g.sigmoid(sum),
            };
            gates.push(act);
        }
        let a = g.ewmul(gates[0], gates[1]);
        let b = g.ewmul(gates[2], gates[3]);
        let combined = g.ewadd(a, b);
        hidden = g.tanh(combined);
    }
    g.finish(&[hidden])
}

/// BERT: transformer encoder layers. The multi-head attention projections
/// are parallel matmuls over the same activations (Q, K, V and output), the
/// feed-forward block is a pair of matmuls with a fused activation.
pub fn bert(scale: ModelScale) -> RecExpr<TensorLang> {
    let mut g = GraphBuilder::new();
    let h = scale.hidden;
    let seq = scale.batch;
    let mut x = g.input("embeddings", &[seq, h]);
    for layer in 0..scale.blocks {
        // Attention projections: three matmuls sharing the layer input.
        let wq = g.weight(&format!("wq_{layer}"), &[h, h]);
        let wk = g.weight(&format!("wk_{layer}"), &[h, h]);
        let wv = g.weight(&format!("wv_{layer}"), &[h, h]);
        let q = g.matmul(x, wq);
        let k = g.matmul(x, wk);
        let v = g.matmul(x, wv);
        // Scores and context (simplified single-head attention).
        let kt = g.transpose(k, &[1, 0]);
        let scores = g.matmul(q, kt);
        let probs = g.sigmoid(scores);
        let context = g.matmul(probs, v);
        let wo = g.weight(&format!("wo_{layer}"), &[h, h]);
        let attn_out = g.matmul(context, wo);
        let res1 = g.ewadd(x, attn_out);
        // Feed-forward block.
        let w1 = g.weight(&format!("ffn1_{layer}"), &[h, 4 * h]);
        let w2 = g.weight(&format!("ffn2_{layer}"), &[4 * h, h]);
        let ff1 = g.matmul_act(Activation::Relu, res1, w1);
        let ff2 = g.matmul(ff1, w2);
        x = g.ewadd(res1, ff2);
    }
    g.finish(&[x])
}

/// ResNeXt-50: residual blocks built around grouped convolutions.
pub fn resnext50(scale: ModelScale) -> RecExpr<TensorLang> {
    let mut g = GraphBuilder::new();
    let c = scale.hidden;
    let mut x = g.input("image", &[1, c, 14, 14]);
    for block in 0..scale.blocks {
        // 1x1 reduce, grouped 3x3, 1x1 expand, plus the identity shortcut.
        let w_reduce = g.weight(&format!("reduce_{block}"), &[c / 2, c, 1, 1]);
        let reduced = g.conv(x, w_reduce, (1, 1), Padding::Same, Activation::Relu);
        // Grouped conv: 32 groups when channels allow, else 4.
        let groups = if (c / 2) % 32 == 0 { 32 } else { 4 };
        let w_group = g.weight(
            &format!("grouped_{block}"),
            &[c / 2, (c / 2) / groups, 3, 3],
        );
        let grouped = g.conv(reduced, w_group, (1, 1), Padding::Same, Activation::Relu);
        let w_expand = g.weight(&format!("expand_{block}"), &[c, c / 2, 1, 1]);
        let expanded = g.conv(grouped, w_expand, (1, 1), Padding::Same, Activation::None);
        let sum = g.ewadd(x, expanded);
        x = g.relu(sum);
    }
    g.finish(&[x])
}

/// NasNet-A: architecture-search cells with several parallel convolutions
/// whose outputs are summed — the structure behind the paper's Fig. 10
/// rewrite (merging four convolutions into two via weight concatenation).
pub fn nasnet_a(scale: ModelScale) -> RecExpr<TensorLang> {
    let mut g = GraphBuilder::new();
    let c = scale.hidden;
    let mut prev = g.input("stem", &[1, c, 14, 14]);
    let mut cur = g.input("stem2", &[1, c, 14, 14]);
    for cell in 0..scale.blocks {
        let mut branch_outputs = vec![];
        for b in 0..3 {
            // Each branch: two convolutions (on cur and prev) summed.
            let w1 = g.weight(&format!("cell{cell}_b{b}_w1"), &[c, c, 3, 3]);
            let w2 = g.weight(&format!("cell{cell}_b{b}_w2"), &[c, c, 3, 3]);
            let c1 = g.conv(cur, w1, (1, 1), Padding::Same, Activation::None);
            let c2 = g.conv(prev, w2, (1, 1), Padding::Same, Activation::None);
            branch_outputs.push(g.ewadd(c1, c2));
        }
        let s1 = g.ewadd(branch_outputs[0], branch_outputs[1]);
        let out = g.ewadd(s1, branch_outputs[2]);
        prev = cur;
        cur = g.relu(out);
    }
    g.finish(&[cur])
}

/// SqueezeNet: fire modules — a squeeze 1x1 convolution feeding two
/// parallel expand convolutions (1x1 and 3x3) whose outputs are
/// concatenated. The parallel expands share their input, which is exactly
/// the conv-merging pattern of the paper's Fig. 9.
pub fn squeezenet(scale: ModelScale) -> RecExpr<TensorLang> {
    let mut g = GraphBuilder::new();
    let c = scale.hidden;
    let mut x = g.input("image", &[1, c, 28, 28]);
    for module in 0..scale.blocks {
        let w_squeeze = g.weight(&format!("squeeze_{module}"), &[c / 4, c, 1, 1]);
        let squeezed = g.conv(x, w_squeeze, (1, 1), Padding::Same, Activation::Relu);
        let w_e1 = g.weight(&format!("expand1_{module}"), &[c / 2, c / 4, 1, 1]);
        let w_e3 = g.weight(&format!("expand3_{module}"), &[c / 2, c / 4, 3, 3]);
        let e1 = g.conv(squeezed, w_e1, (1, 1), Padding::Same, Activation::Relu);
        let e3 = g.conv(squeezed, w_e3, (1, 1), Padding::Same, Activation::Relu);
        x = g.concat2(1, e1, e3);
    }
    let pooled = g.poolavg(x, (2, 2), (2, 2), Padding::Valid);
    g.finish(&[pooled])
}

/// VGG-19: a plain chain of convolution + pooling. Little graph-level
/// parallelism exists, so (as in the paper) almost all of the gain comes
/// from operator fusion.
pub fn vgg19(scale: ModelScale) -> RecExpr<TensorLang> {
    let mut g = GraphBuilder::new();
    let c = scale.hidden.max(16);
    let stages = scale.blocks.max(2);
    let mut x = g.input("image", &[1, c, 32, 32]);
    let mut side = 32i64;
    for stage in 0..stages {
        for layer in 0..2 {
            let w = g.weight(&format!("conv_{stage}_{layer}"), &[c, c, 3, 3]);
            let conv = g.conv(x, w, (1, 1), Padding::Same, Activation::None);
            x = g.relu(conv);
        }
        x = g.poolmax(x, (2, 2), (2, 2), Padding::Valid);
        side /= 2;
    }
    let wfc = g.weight("fc", &[c, c]);
    let reshaped = g.reshape(x, &[side * side, c]);
    let logits = g.matmul(reshaped, wfc);
    g.finish(&[logits])
}

/// Inception-v3: inception modules with four parallel branches over the
/// same input (1x1, 3x3, 5x5-ish and pooled), concatenated along channels.
pub fn inception_v3(scale: ModelScale) -> RecExpr<TensorLang> {
    let mut g = GraphBuilder::new();
    let c = scale.hidden;
    let mut x = g.input("image", &[1, c, 14, 14]);
    for module in 0..scale.blocks {
        let w1 = g.weight(&format!("inc{module}_1x1"), &[c / 4, c, 1, 1]);
        let b1 = g.conv(x, w1, (1, 1), Padding::Same, Activation::Relu);

        let w3r = g.weight(&format!("inc{module}_3x3r"), &[c / 4, c, 1, 1]);
        let b3r = g.conv(x, w3r, (1, 1), Padding::Same, Activation::Relu);
        let w3 = g.weight(&format!("inc{module}_3x3"), &[c / 4, c / 4, 3, 3]);
        let b3 = g.conv(b3r, w3, (1, 1), Padding::Same, Activation::Relu);

        let w5r = g.weight(&format!("inc{module}_5x5r"), &[c / 4, c, 1, 1]);
        let b5r = g.conv(x, w5r, (1, 1), Padding::Same, Activation::Relu);
        let w5 = g.weight(&format!("inc{module}_5x5"), &[c / 4, c / 4, 3, 3]);
        let b5 = g.conv(b5r, w5, (1, 1), Padding::Same, Activation::Relu);

        let pooled = g.poolavg(x, (3, 3), (1, 1), Padding::Same);
        let wp = g.weight(&format!("inc{module}_pool"), &[c / 4, c, 1, 1]);
        let bp = g.conv(pooled, wp, (1, 1), Padding::Same, Activation::Relu);

        let c12 = g.concat2(1, b1, b3);
        let c34 = g.concat2(1, b5, bp);
        x = g.concat2(1, c12, c34);
    }
    g.finish(&[x])
}

/// ResNet-50: bottleneck residual blocks. Included because the paper notes
/// that the TASO rule set yields no speedup for it on a T4 — a useful
/// negative control for the harness.
pub fn resnet50(scale: ModelScale) -> RecExpr<TensorLang> {
    let mut g = GraphBuilder::new();
    let c = scale.hidden;
    let mut x = g.input("image", &[1, c, 14, 14]);
    for block in 0..scale.blocks {
        let w1 = g.weight(&format!("res{block}_1"), &[c / 4, c, 1, 1]);
        let w2 = g.weight(&format!("res{block}_2"), &[c / 4, c / 4, 3, 3]);
        let w3 = g.weight(&format!("res{block}_3"), &[c, c / 4, 1, 1]);
        let a = g.conv(x, w1, (1, 1), Padding::Same, Activation::Relu);
        let b = g.conv(a, w2, (1, 1), Padding::Same, Activation::Relu);
        let d = g.conv(b, w3, (1, 1), Padding::Same, Activation::None);
        let sum = g.ewadd(x, d);
        x = g.relu(sum);
    }
    g.finish(&[x])
}

/// Returns `(name, graph)` pairs for all seven paper benchmarks at the
/// given scale.
pub fn all_benchmarks(scale: ModelScale) -> Vec<(&'static str, RecExpr<TensorLang>)> {
    BENCHMARKS
        .iter()
        .map(|&name| (name, build_benchmark(name, scale)))
        .collect()
}

/// Helper used by tests: true if every node of the graph is well-typed.
pub fn is_well_typed(graph: &RecExpr<TensorLang>) -> bool {
    tensat_ir::infer_recexpr(graph).iter().all(|d| d.is_valid())
}

/// The id of the graph root (the last node), for convenience.
pub fn root_of(graph: &RecExpr<TensorLang>) -> Id {
    graph.root()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensat_ir::CostModel;

    #[test]
    fn all_benchmarks_are_well_typed() {
        for (name, graph) in all_benchmarks(ModelScale::default()) {
            assert!(is_well_typed(&graph), "{name} is not well-typed");
            assert!(graph.len() > 10, "{name} is suspiciously small");
        }
        assert!(is_well_typed(&resnet50(ModelScale::default())));
    }

    #[test]
    fn all_benchmarks_have_finite_cost() {
        let model = CostModel::default();
        for (name, graph) in all_benchmarks(ModelScale::default()) {
            let cost = model.graph_cost(&graph);
            assert!(cost.is_finite() && cost > 0.0, "{name} cost = {cost}");
        }
    }

    #[test]
    fn scaling_up_increases_size() {
        let small = bert(ModelScale::tiny());
        let big = bert(ModelScale {
            blocks: 3,
            hidden: 128,
            batch: 8,
        });
        assert!(big.len() > small.len());
    }

    #[test]
    fn nasrnn_has_many_parallel_matmuls() {
        let graph = nasrnn(ModelScale::default());
        let stats = tensat_ir::graph_stats(&graph);
        assert!(stats.matmuls >= 8, "NasRNN should contain many matmuls");
    }

    #[test]
    fn conv_models_have_convs() {
        for name in [
            "ResNeXt-50",
            "NasNet-A",
            "SqueezeNet",
            "VGG-19",
            "Inception-v3",
        ] {
            let graph = build_benchmark(name, ModelScale::default());
            let stats = tensat_ir::graph_stats(&graph);
            assert!(stats.convs >= 2, "{name} should contain convolutions");
        }
    }

    #[test]
    #[should_panic]
    fn unknown_benchmark_panics() {
        build_benchmark("AlexNet", ModelScale::default());
    }
}
