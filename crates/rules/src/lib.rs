//! # tensat-rules
//!
//! The rewrite-rule library for the TENSAT reproduction: a textual pattern
//! parser, shape-checking conditions, the single-pattern rule set, and the
//! multi-pattern rule set (paper §3.2, §4).
//!
//! ```
//! use tensat_rules::{single_rules, multi_rules, parse_pattern};
//! assert!(single_rules().len() >= 25);
//! assert_eq!(multi_rules().len(), 3);
//! let p = parse_pattern("(ewadd ?x ?y)").unwrap();
//! assert_eq!(p.vars().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conditions;
pub mod multi;
pub mod parser;
pub mod single;

pub use conditions::{
    guard_for_kinds, kind_tag_mask, pattern_data, pattern_data_with, pattern_is_valid,
    pattern_kind_constraints, shape_check, shape_guards, TensorGuard,
};
pub use multi::{multi_rules, MultiPatternRule};
pub use parser::{parse_pattern, ParsePatternError};
pub use single::{rw, rw_bidi, single_rules, testing, TensorRewrite};
