//! Shape-checking side conditions for rewrite rules (paper §4).
//!
//! Before a rewrite is applied at a match, TENSAT verifies that the tensor
//! shapes in the *target* pattern are compatible. Here this is done by
//! symbolically inferring the [`TensorData`] of every node of the target
//! pattern under the candidate substitution (reading the bound variables'
//! data from the e-class analysis) and rejecting the match if any node is
//! ill-typed.
//!
//! The check splits into two parts:
//!
//! * a **per-variable** part — every variable the target uses must be bound
//!   to a class with *valid* data of the *kind* its target positions expect
//!   (tensor operand, integer parameter, ...). This part is compiled down to
//!   e-matching [guards](tensat_egraph::GuardFn) by [`shape_guards`], so the
//!   machine prunes inadmissible bindings *during* matching
//!   ([`tensat_egraph::Instruction::Guard`]) instead of enumerating complete
//!   substitutions first.
//! * a **cross-variable** residue — inferring the target's shapes under the
//!   full substitution and comparing its output shape with the matched
//!   class. This cannot be decided per variable and stays a post-match
//!   [`Condition`] ([`shape_check`]).
//!
//! Guards are a sound approximation of the condition (they only reject
//! bindings the condition would reject), so guarded search followed by the
//! residual condition fires exactly the applications the unguarded rule
//! fires — proven differentially by the proptests in
//! `crates/bench/tests/guarded_search.rs`.

use std::collections::BTreeSet;
use std::sync::Arc;
use tensat_egraph::{Condition, EGraph, ENodeOrVar, Guard, Id, Language, Pattern, Subst, Var};
use tensat_ir::{child_data_kinds, infer, DataKind, TensorAnalysis, TensorData, TensorLang};

/// Infers the [`TensorData`] of every node of `pattern`, reading each
/// variable's data from `lookup`. Variables for which `lookup` returns
/// `None` yield `Invalid`.
///
/// This is the substitution-agnostic core of [`pattern_data`]: the static
/// rule verifier (`tensat-verify`) uses it to interpret patterns over
/// synthetic variable bindings with no e-graph in sight.
pub fn pattern_data_with(
    pattern: &Pattern<TensorLang>,
    lookup: &dyn Fn(Var) -> Option<TensorData>,
) -> Vec<TensorData> {
    let mut data: Vec<TensorData> = Vec::with_capacity(pattern.ast.len());
    for (_, node) in pattern.ast.iter() {
        let d = match node {
            ENodeOrVar::Var(v) => {
                lookup(*v).unwrap_or_else(|| TensorData::invalid(format!("unbound variable {v}")))
            }
            ENodeOrVar::ENode(n) => {
                let get = |id: Id| data[usize::from(id)].clone();
                infer(n, &get)
            }
        };
        data.push(d);
    }
    data
}

/// Infers the [`TensorData`] of every node of `pattern` under `subst`,
/// without modifying the e-graph. Variables take the data of the e-class
/// they are bound to; unbound variables yield `Invalid`.
pub fn pattern_data(
    egraph: &EGraph<TensorLang, TensorAnalysis>,
    pattern: &Pattern<TensorLang>,
    subst: &Subst,
) -> Vec<TensorData> {
    pattern_data_with(pattern, &|v| {
        subst.get(v).map(|class| egraph.eclass(class).data.clone())
    })
}

/// True if every node of `pattern` is well-typed under `subst`.
pub fn pattern_is_valid(
    egraph: &EGraph<TensorLang, TensorAnalysis>,
    pattern: &Pattern<TensorLang>,
    subst: &Subst,
) -> bool {
    pattern_data(egraph, pattern, subst)
        .iter()
        .all(|d| d.is_valid())
}

/// Builds the standard shape-checking condition for a rule with the given
/// target pattern: the rule may fire only if the instantiated target is
/// fully well-typed *and* its output shape matches the matched class's
/// shape (so the union is shape-preserving).
pub fn shape_check(target: Pattern<TensorLang>) -> Condition<TensorLang, TensorAnalysis> {
    Arc::new(move |egraph, matched_class, subst| {
        let data = pattern_data(egraph, &target, subst);
        if !data.iter().all(|d| d.is_valid()) {
            return false;
        }
        let target_out = data.last().expect("pattern is non-empty");
        let class_data = &egraph.eclass(matched_class).data;
        match (class_data.shape(), target_out.shape()) {
            (Some(a), Some(b)) => a == b,
            // If either side is not a plain tensor (e.g. the matched class
            // is still invalid), only require the target to be valid.
            _ => true,
        }
    })
}

/// A per-variable analysis guard over [`TensorData`], evaluated inside the
/// e-matching machine (see [`tensat_egraph::Guard`]).
pub type TensorGuard = Guard<TensorData>;

/// For every variable of `pattern`, the set of [`DataKind`]s its child
/// positions require (per [`child_data_kinds`]), in first-occurrence order.
/// [`DataKind::Any`] positions contribute no constraint — validity alone is
/// required there — so an empty set means "any valid data".
///
/// A binding violating one of these kinds makes [`infer`] return invalid
/// data for the corresponding pattern node, so [`pattern_is_valid`] is
/// guaranteed false for it: the constraints are the per-variable part of
/// the shape check, safe to evaluate during matching.
pub fn pattern_kind_constraints(pattern: &Pattern<TensorLang>) -> Vec<(Var, BTreeSet<DataKind>)> {
    let mut out: Vec<(Var, BTreeSet<DataKind>)> = pattern
        .vars()
        .into_iter()
        .map(|v| (v, BTreeSet::new()))
        .collect();
    for (_, node) in pattern.ast.iter() {
        if let ENodeOrVar::ENode(n) = node {
            for (&child, &kind) in n.children().iter().zip(child_data_kinds(n)) {
                if kind == DataKind::Any {
                    continue;
                }
                if let ENodeOrVar::Var(v) = &pattern.ast[child] {
                    let entry = out.iter_mut().find(|(u, _)| u == v);
                    entry
                        .expect("pattern.vars() lists every variable")
                        .1
                        .insert(kind);
                }
            }
        }
    }
    out
}

/// Builds the guard for one kind-constraint set: the bound class's data
/// must be valid and match every required kind (see
/// [`TensorData::matches_kind`]).
///
/// Both requirements are pure functions of the data's *variant*, so the
/// whole guard compiles down to a tag mask over the e-graph's interned
/// kind-tag side table ([`TensorData::kind_tag`]) — evaluated by the
/// machine with one array read and one bit test, with no `Arc<dyn>` call
/// and no borrow of the full `TensorData`. [`kind_tag_mask`] pins the
/// equivalence with the dynamic check.
pub fn guard_for_kinds(kinds: &BTreeSet<DataKind>) -> TensorGuard {
    Guard::tags(kind_tag_mask(kinds))
}

/// The tag mask equivalent to "valid data matching every kind in `kinds`":
/// the intersection of the per-kind masks ([`DataKind::tag_mask`]), starting
/// from the all-valid mask (an empty set means validity alone).
pub fn kind_tag_mask(kinds: &BTreeSet<DataKind>) -> u32 {
    kinds
        .iter()
        .fold(tensat_ir::VALID_TAG_MASK, |mask, k| mask & k.tag_mask())
}

/// The per-variable e-matching guards implied by a rule's target pattern:
/// every target variable must be bound to a class with valid data of the
/// kinds its target positions require. This is exactly the per-variable
/// part of [`shape_check`] / [`pattern_is_valid`] compiled down to machine
/// guards — the cross-variable shape comparison stays in the post-match
/// condition.
pub fn shape_guards(target: &Pattern<TensorLang>) -> Vec<(Var, TensorGuard)> {
    pattern_kind_constraints(target)
        .iter()
        .map(|(v, kinds)| (*v, guard_for_kinds(kinds)))
        .collect()
}

/// A condition requiring the string bound to `var`-like child to be a
/// self-inverse permutation (used by the double-transpose elimination
/// rule). The permutation is the *literal* in the pattern, so this simply
/// checks the decoded permutation.
pub fn involutive_permutation(perm: &[usize]) -> bool {
    perm.iter()
        .enumerate()
        .all(|(i, &p)| p < perm.len() && perm[p] == i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_pattern;
    use tensat_egraph::Var;
    use tensat_ir::{GraphBuilder, TensorEGraph};

    fn setup() -> (TensorEGraph, Id, Id, Id) {
        // x: [8,128] input, w1: [128,64] weight, w2: [128,32] weight.
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[8, 128]);
        let w1 = g.weight("w1", &[128, 64]);
        let _w2 = g.weight("w2", &[128, 32]);
        let m = g.matmul(x, w1);
        let expr = g.finish(&[m]);
        let mut eg = TensorEGraph::new(TensorAnalysis);
        eg.add_expr(&expr);
        // Also add w2 so we can bind variables to it.
        let mut g2 = GraphBuilder::new();
        let w2e = g2.weight("w2", &[128, 32]);
        let e2 = g2.finish(&[w2e]);
        eg.add_expr(&e2);
        eg.rebuild();
        let find = |name: &str, shape: &[i64]| {
            let sym = tensat_ir::encode_identifier(name, shape);
            eg.lookup(&TensorLang::Str(sym)).unwrap()
        };
        let x_id = eg
            .lookup(&TensorLang::Input([find("x", &[8, 128])]))
            .unwrap();
        let w1_id = eg
            .lookup(&TensorLang::Weight([find("w1", &[128, 64])]))
            .unwrap();
        let w2_id = eg
            .lookup(&TensorLang::Weight([find("w2", &[128, 32])]))
            .unwrap();
        (eg, x_id, w1_id, w2_id)
    }

    #[test]
    fn valid_target_pattern_passes() {
        let (eg, x, w1, w2) = setup();
        let target = parse_pattern("(matmul 0 ?x (concat2 1 ?w1 ?w2))").unwrap();
        let mut subst = Subst::new();
        subst.insert(Var::new("x"), x);
        subst.insert(Var::new("w1"), w1);
        subst.insert(Var::new("w2"), w2);
        assert!(pattern_is_valid(&eg, &target, &subst));
        let data = pattern_data(&eg, &target, &subst);
        assert_eq!(data.last().unwrap().shape().unwrap(), &[8, 96]);
    }

    #[test]
    fn invalid_target_pattern_fails() {
        let (eg, x, w1, w2) = setup();
        // Concatenating along axis 0 mismatches the second dims (64 vs 32).
        let target = parse_pattern("(matmul 0 ?x (concat2 0 ?w1 ?w2))").unwrap();
        let mut subst = Subst::new();
        subst.insert(Var::new("x"), x);
        subst.insert(Var::new("w1"), w1);
        subst.insert(Var::new("w2"), w2);
        assert!(!pattern_is_valid(&eg, &target, &subst));
    }

    #[test]
    fn unbound_variable_is_invalid() {
        let (eg, x, _, _) = setup();
        let target = parse_pattern("(ewadd ?x ?missing)").unwrap();
        let mut subst = Subst::new();
        subst.insert(Var::new("x"), x);
        assert!(!pattern_is_valid(&eg, &target, &subst));
    }

    #[test]
    fn kind_constraints_follow_target_positions() {
        // ?x is a matmul data operand (Tensor); ?w1/?w2 are concat operands
        // (Tensor); ?a is the concat axis (Scalar).
        let target = parse_pattern("(matmul 0 ?x (concat2 ?a ?w1 ?w2))").unwrap();
        let constraints = pattern_kind_constraints(&target);
        let get = |name: &str| {
            constraints
                .iter()
                .find(|(v, _)| *v == Var::new(name))
                .map(|(_, k)| k.iter().copied().collect::<Vec<_>>())
                .unwrap()
        };
        assert_eq!(get("x"), vec![DataKind::Tensor]);
        assert_eq!(get("a"), vec![DataKind::Scalar]);
        assert_eq!(get("w1"), vec![DataKind::Tensor]);
        // A variable used only at an ignored (Any) position has no kind
        // constraint, but still appears (validity is always required).
        let act_target = parse_pattern("(matmul ?act ?x ?w)").unwrap();
        let constraints = pattern_kind_constraints(&act_target);
        let act = constraints
            .iter()
            .find(|(v, _)| *v == Var::new("act"))
            .unwrap();
        assert!(act.1.is_empty());
    }

    #[test]
    fn shape_guards_reject_exactly_what_the_condition_rejects_per_var() {
        let (eg, x, _w1, _w2) = setup();
        let target = parse_pattern("(relu ?x)").unwrap();
        let guards = shape_guards(&target);
        assert_eq!(guards.len(), 1);
        let (var, guard) = &guards[0];
        assert_eq!(*var, Var::new("x"));
        // Kind-only guards carry no dynamic predicate at all — the whole
        // check is the tag mask.
        assert!(guard.pred().is_none());
        let check = |d: &TensorData| guard.check(d.kind_tag(), d);
        // A tensor-valued class passes; scalar and invalid data fail, just
        // as pattern_is_valid would fail for such a binding.
        assert!(check(&eg.eclass(x).data));
        assert!(!check(&TensorData::Scalar(3)));
        assert!(!check(&TensorData::invalid("broken")));
        let mut subst = Subst::new();
        subst.insert(Var::new("x"), x);
        assert!(pattern_is_valid(&eg, &target, &subst));
    }

    /// The tag-mask compilation of kind guards must be *extensionally
    /// equal* to the dynamic check it replaced: for every kind-constraint
    /// set and every data variant, mask membership of the interned tag
    /// agrees with `is_valid() && all matches_kind`.
    #[test]
    fn kind_tag_mask_equals_dynamic_kind_check() {
        use tensat_ir::TensorInfo;
        let samples = [
            TensorData::invalid("broken"),
            TensorData::Scalar(7),
            TensorData::Str(tensat_egraph::Symbol::new("perm_1_0")),
            TensorData::Tensor(TensorInfo::new(vec![2, 3], false)),
            TensorData::Tuple(
                Box::new(TensorInfo::new(vec![2], false)),
                Box::new(TensorInfo::new(vec![3], false)),
            ),
        ];
        let all_kinds = [
            DataKind::Scalar,
            DataKind::Str,
            DataKind::Tensor,
            DataKind::Tuple,
            DataKind::Any,
        ];
        // Every subset of the five kinds (32 sets) against every variant.
        for bits in 0u32..32 {
            let kinds: BTreeSet<DataKind> = all_kinds
                .iter()
                .enumerate()
                .filter(|(i, _)| bits & (1 << i) != 0)
                .map(|(_, k)| *k)
                .collect();
            let mask = kind_tag_mask(&kinds);
            let guard = guard_for_kinds(&kinds);
            for d in &samples {
                let dynamic = d.is_valid() && kinds.iter().all(|k| d.matches_kind(*k));
                assert_eq!(
                    mask & (1u32 << d.kind_tag()) != 0,
                    dynamic,
                    "mask {mask:#x} disagrees with dynamic check for {kinds:?} on {d:?}"
                );
                assert_eq!(guard.check(d.kind_tag(), d), dynamic);
            }
        }
    }

    #[test]
    fn involutive_permutation_check() {
        assert!(involutive_permutation(&[1, 0]));
        assert!(involutive_permutation(&[0, 1, 2]));
        assert!(involutive_permutation(&[2, 1, 0]));
        assert!(!involutive_permutation(&[1, 2, 0]));
    }
}
