//! A small s-expression parser for tensor-graph rewrite patterns.
//!
//! The textual form mirrors the paper's Figure 2: operator applications are
//! parenthesised lists, `?name` is a pattern variable, bare integers are
//! integer parameters, and double-quoted strings are string parameters
//! (permutations, shapes).
//!
//! ```text
//! (split0 (split 1 (matmul ?act ?x (concat2 1 ?w1 ?w2))))
//! ```

use tensat_egraph::{ENodeOrVar, Pattern, RecExpr, Symbol, Var};
use tensat_ir::TensorLang;

/// Errors produced when parsing a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePatternError(pub String);

impl std::fmt::Display for ParsePatternError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pattern parse error: {}", self.0)
    }
}

impl std::error::Error for ParsePatternError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Open,
    Close,
    Atom(String),
    Str(String),
}

fn tokenize(input: &str) -> Result<Vec<Token>, ParsePatternError> {
    let mut tokens = vec![];
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '(' => {
                tokens.push(Token::Open);
                chars.next();
            }
            ')' => {
                tokens.push(Token::Close);
                chars.next();
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some(ch) => s.push(ch),
                        None => {
                            return Err(ParsePatternError("unterminated string literal".into()))
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            _ => {
                let mut s = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_whitespace() || ch == '(' || ch == ')' {
                        break;
                    }
                    s.push(ch);
                    chars.next();
                }
                tokens.push(Token::Atom(s));
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    ast: RecExpr<ENodeOrVar<TensorLang>>,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn parse_atom(&mut self, atom: &str) -> Result<tensat_egraph::Id, ParsePatternError> {
        if let Some(stripped) = atom.strip_prefix('?') {
            if stripped.is_empty() {
                return Err(ParsePatternError("empty variable name `?`".into()));
            }
            return Ok(self.ast.add(ENodeOrVar::Var(Var::new(stripped))));
        }
        if let Ok(n) = atom.parse::<i64>() {
            return Ok(self.ast.add(ENodeOrVar::ENode(TensorLang::Num(n))));
        }
        Err(ParsePatternError(format!(
            "atom `{atom}` is neither a variable, an integer, nor a string literal; \
             operators must be applied in parentheses"
        )))
    }

    fn parse_expr(&mut self) -> Result<tensat_egraph::Id, ParsePatternError> {
        match self.next() {
            Some(Token::Atom(a)) => self.parse_atom(&a),
            Some(Token::Str(s)) => Ok(self
                .ast
                .add(ENodeOrVar::ENode(TensorLang::Str(Symbol::new(s))))),
            Some(Token::Open) => {
                let op = match self.next() {
                    Some(Token::Atom(op)) => op,
                    other => {
                        return Err(ParsePatternError(format!(
                            "expected operator name after `(`, found {other:?}"
                        )))
                    }
                };
                let mut children = vec![];
                loop {
                    match self.peek() {
                        Some(Token::Close) => {
                            self.next();
                            break;
                        }
                        Some(_) => children.push(self.parse_expr()?),
                        None => return Err(ParsePatternError("unexpected end of input".into())),
                    }
                }
                let node = TensorLang::from_op(&op, children).map_err(ParsePatternError)?;
                Ok(self.ast.add(ENodeOrVar::ENode(node)))
            }
            Some(Token::Close) => Err(ParsePatternError("unexpected `)`".into())),
            None => Err(ParsePatternError("empty pattern".into())),
        }
    }
}

/// Parses a pattern from its textual s-expression form.
///
/// # Errors
///
/// Returns an error describing the first syntax or arity problem found.
///
/// # Examples
///
/// ```
/// use tensat_rules::parse_pattern;
/// let p = parse_pattern("(matmul ?act ?x (concat2 1 ?w1 ?w2))").unwrap();
/// assert_eq!(p.vars().len(), 4);
/// ```
pub fn parse_pattern(input: &str) -> Result<Pattern<TensorLang>, ParsePatternError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        ast: RecExpr::default(),
    };
    parser.parse_expr()?;
    if parser.pos != parser.tokens.len() {
        return Err(ParsePatternError(format!(
            "trailing tokens after pattern: {:?}",
            &parser.tokens[parser.pos..]
        )));
    }
    Ok(Pattern::new(parser.ast))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_pattern() {
        let p = parse_pattern("(ewadd ?x ?y)").unwrap();
        assert_eq!(p.to_string(), "(ewadd ?x ?y)");
        assert_eq!(p.vars().len(), 2);
    }

    #[test]
    fn parses_nested_pattern_with_numbers() {
        let p = parse_pattern("(split0 (split 1 (matmul ?act ?x (concat2 1 ?w1 ?w2))))").unwrap();
        assert_eq!(
            p.to_string(),
            "(split0 (split 1 (matmul ?act ?x (concat2 1 ?w1 ?w2))))"
        );
        assert_eq!(p.vars().len(), 4);
    }

    #[test]
    fn parses_string_literals() {
        let p = parse_pattern("(transpose ?x \"1_0\")").unwrap();
        assert_eq!(p.to_string(), "(transpose ?x 1_0)");
    }

    #[test]
    fn parses_bare_variable() {
        let p = parse_pattern("?x").unwrap();
        assert_eq!(p.to_string(), "?x");
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(parse_pattern("").is_err());
        assert!(parse_pattern("(unknownop ?x)").is_err());
        assert!(parse_pattern("(ewadd ?x)").is_err()); // wrong arity
        assert!(parse_pattern("(ewadd ?x ?y))").is_err()); // trailing token
        assert!(parse_pattern("(ewadd ?x ?y").is_err()); // missing close
        assert!(parse_pattern("justanop").is_err());
        assert!(parse_pattern("?").is_err());
        assert!(parse_pattern("(transpose ?x \"unterminated)").is_err());
    }

    #[test]
    fn negative_numbers_parse() {
        let p = parse_pattern("(matmul -1 ?x ?y)").unwrap();
        assert_eq!(p.to_string(), "(matmul -1 ?x ?y)");
    }
}
