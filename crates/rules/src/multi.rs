//! Multi-pattern rewrite rules (paper §3.2 and §4).
//!
//! A multi-pattern rule has several source patterns that must match
//! *simultaneously* (with consistent variable bindings) and one target
//! pattern per source; each matched output class is unioned with the
//! corresponding instantiated target. The canonical example is the paper's
//! Figure 2: two `matmul`s sharing an input merge into one `matmul` over
//! concatenated weights, whose two halves are recovered with `split`.
//!
//! The application algorithm (Algorithm 1: canonicalize, search once, take
//! the Cartesian product of matches, check compatibility) lives in
//! `tensat-core::explore`; this module defines the rule data and the rule
//! set.

use crate::conditions::pattern_kind_constraints;
use crate::parser::parse_pattern;
use std::collections::{BTreeSet, HashMap};
use tensat_egraph::{Pattern, Var};
use tensat_ir::{DataKind, TensorLang};

/// A multi-pattern rewrite rule: `srcs[i]` is equivalent to `dsts[i]` for
/// every `i`, under a single shared variable binding.
#[derive(Debug, Clone)]
pub struct MultiPatternRule {
    /// Human-readable rule name.
    pub name: String,
    /// The source patterns, all of which must match simultaneously.
    pub srcs: Vec<Pattern<TensorLang>>,
    /// The target patterns, pairwise equivalent to the sources.
    pub dsts: Vec<Pattern<TensorLang>>,
    /// If true, matches where two source patterns bind to the *same*
    /// e-class are skipped (merging an operator with itself is legal but
    /// useless and inflates the e-graph).
    pub skip_identical: bool,
}

impl MultiPatternRule {
    /// Creates a rule from textual patterns.
    ///
    /// # Panics
    ///
    /// Panics if the pattern lists have different lengths, any pattern
    /// fails to parse, or a target uses a variable not bound by any source
    /// — rule definitions are static program data.
    pub fn new(name: &str, srcs: &[&str], dsts: &[&str]) -> Self {
        assert_eq!(
            srcs.len(),
            dsts.len(),
            "rule {name}: sources and targets must pair up"
        );
        assert!(
            srcs.len() >= 2,
            "rule {name}: multi-pattern rules need >= 2 patterns"
        );
        let srcs: Vec<Pattern<TensorLang>> = srcs
            .iter()
            .map(|s| {
                parse_pattern(s)
                    .unwrap_or_else(|e| panic!("rule {name}: bad source pattern `{s}`: {e}"))
            })
            .collect();
        let dsts: Vec<Pattern<TensorLang>> = dsts
            .iter()
            .map(|s| {
                parse_pattern(s)
                    .unwrap_or_else(|e| panic!("rule {name}: bad target pattern `{s}`: {e}"))
            })
            .collect();
        let mut src_vars: Vec<Var> = vec![];
        for s in &srcs {
            for v in s.vars() {
                if !src_vars.contains(&v) {
                    src_vars.push(v);
                }
            }
        }
        for d in &dsts {
            for v in d.vars() {
                assert!(
                    src_vars.contains(&v),
                    "rule {name}: target uses unbound variable {v}"
                );
            }
        }
        MultiPatternRule {
            name: name.to_string(),
            srcs,
            dsts,
            skip_identical: true,
        }
    }

    /// All distinct variables across the source patterns.
    pub fn variables(&self) -> Vec<Var> {
        let mut vars = vec![];
        for s in &self.srcs {
            for v in s.vars() {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
        vars
    }

    /// The per-variable analysis-guard constraints implied by this rule's
    /// *target* patterns: a variable is listed iff it occurs in at least
    /// one target, with the union of the [`DataKind`]s its target positions
    /// require (per [`pattern_kind_constraints`]; the union is sound
    /// because every target is shape-checked under the merged binding
    /// before the rule fires).
    ///
    /// A source-pattern match binding such a variable to invalid data — or
    /// to data of the wrong kind — can never contribute to an application,
    /// so the exploration driver pushes these constraints into the
    /// e-matching machine as guards on the canonicalized source searches
    /// (intersecting them across rules that share a canonical source).
    pub fn target_guard_kinds(&self) -> HashMap<Var, BTreeSet<DataKind>> {
        let mut out: HashMap<Var, BTreeSet<DataKind>> = HashMap::new();
        for dst in &self.dsts {
            for (var, kinds) in pattern_kind_constraints(dst) {
                out.entry(var).or_default().extend(kinds);
            }
        }
        out
    }

    /// The variables shared between at least two source patterns — the ones
    /// whose bindings must be checked for compatibility when combining
    /// per-pattern matches (Algorithm 1, line 17).
    pub fn shared_variables(&self) -> Vec<Var> {
        let mut counts: Vec<(Var, usize)> = vec![];
        for s in &self.srcs {
            for v in s.vars() {
                match counts.iter_mut().find(|(u, _)| *u == v) {
                    Some((_, c)) => *c += 1,
                    None => counts.push((v, 1)),
                }
            }
        }
        counts
            .into_iter()
            .filter(|(_, c)| *c >= 2)
            .map(|(v, _)| v)
            .collect()
    }
}

/// The multi-pattern rule set used by TENSAT: merging parallel `matmul`s or
/// `conv`s that share an operand into a single wider operator (paper
/// Figures 2, 8, 9 and the generalisations mentioned in the appendix).
pub fn multi_rules() -> Vec<MultiPatternRule> {
    vec![
        // Two matmuls sharing the data input -> one matmul over concatenated
        // weights (paper Fig. 2 / Fig. 8).
        MultiPatternRule::new(
            "merge-matmuls-shared-lhs",
            &["(matmul ?act ?x ?w1)", "(matmul ?act ?x ?w2)"],
            &[
                "(split0 (split 1 (matmul ?act ?x (concat2 1 ?w1 ?w2))))",
                "(split1 (split 1 (matmul ?act ?x (concat2 1 ?w1 ?w2))))",
            ],
        ),
        // Two matmuls sharing the weight -> one matmul over concatenated
        // data rows.
        MultiPatternRule::new(
            "merge-matmuls-shared-rhs",
            &["(matmul ?act ?x1 ?w)", "(matmul ?act ?x2 ?w)"],
            &[
                "(split0 (split 0 (matmul ?act (concat2 0 ?x1 ?x2) ?w)))",
                "(split1 (split 0 (matmul ?act (concat2 0 ?x1 ?x2) ?w)))",
            ],
        ),
        // Two convolutions sharing the input -> one convolution over
        // concatenated output channels (paper Fig. 9).
        MultiPatternRule::new(
            "merge-convs-shared-input",
            &[
                "(conv ?sh ?sw ?p ?act ?x ?w1)",
                "(conv ?sh ?sw ?p ?act ?x ?w2)",
            ],
            &[
                "(split0 (split 1 (conv ?sh ?sw ?p ?act ?x (concat2 0 ?w1 ?w2))))",
                "(split1 (split 1 (conv ?sh ?sw ?p ?act ?x (concat2 0 ?w1 ?w2))))",
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_set_is_well_formed() {
        let rules = multi_rules();
        assert_eq!(rules.len(), 3);
        for r in &rules {
            assert_eq!(r.srcs.len(), r.dsts.len());
            assert!(r.srcs.len() >= 2);
            assert!(
                !r.shared_variables().is_empty(),
                "rule {} shares no vars",
                r.name
            );
        }
    }

    #[test]
    fn shared_variables_identified() {
        let r = &multi_rules()[0];
        let shared = r.shared_variables();
        assert!(shared.contains(&Var::new("x")));
        assert!(shared.contains(&Var::new("act")));
        assert!(!shared.contains(&Var::new("w1")));
        assert_eq!(r.variables().len(), 4);
    }

    #[test]
    fn target_guard_kinds_cover_dst_used_vars() {
        // merge-matmuls-shared-lhs: targets are
        // (split{0,1} (split 1 (matmul ?act ?x (concat2 1 ?w1 ?w2)))).
        let r = &multi_rules()[0];
        let kinds = r.target_guard_kinds();
        assert_eq!(kinds[&Var::new("x")], [DataKind::Tensor].into());
        assert_eq!(kinds[&Var::new("w1")], [DataKind::Tensor].into());
        assert_eq!(kinds[&Var::new("w2")], [DataKind::Tensor].into());
        // ?act sits at matmul's ignored activation position: present (its
        // data must still be valid) but unconstrained in kind.
        assert!(kinds[&Var::new("act")].is_empty());
    }

    #[test]
    #[should_panic]
    fn unbound_target_variable_panics() {
        MultiPatternRule::new(
            "bad",
            &["(matmul ?act ?x ?w1)", "(matmul ?act ?x ?w2)"],
            &["?x", "?nope"],
        );
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        MultiPatternRule::new(
            "bad",
            &["(matmul ?act ?x ?w1)", "(matmul ?act ?x ?w2)"],
            &["?x"],
        );
    }
}
