//! The single-pattern rewrite-rule set.
//!
//! These rules follow TASO's generated substitution set (Jia et al. 2019),
//! restricted to the hand-auditable core that drives the optimizations the
//! paper reports: operator fusion, linearity of matmul/conv over addition,
//! concat/split algebra, and transpose algebra. Every rule carries the
//! standard shape-checking condition of [`crate::conditions::shape_check`].

use crate::conditions::{involutive_permutation, shape_check, shape_guards, TensorGuard};
use crate::parser::parse_pattern;
use std::sync::Arc;
use tensat_egraph::{Guard, Rewrite, Var};
use tensat_ir::{decode_permutation, DataKind, TensorAnalysis, TensorData, TensorLang};

/// A rewrite over the tensor language with shape analysis.
pub type TensorRewrite = Rewrite<TensorLang, TensorAnalysis>;

/// Builds a shape-checked rewrite from textual left/right patterns.
///
/// The shape check is split: the per-variable part (every target variable
/// must bind valid data of the kind its target positions require) becomes
/// e-matching guards via [`shape_guards`], pruning dead bindings inside the
/// machine; the cross-variable part (full target inference and output-shape
/// comparison) stays the post-match [`shape_check`] condition.
///
/// # Panics
///
/// Panics if either pattern fails to parse or the right-hand side uses a
/// variable not bound on the left — rule definitions are static program
/// data, so failing fast at construction is the right behaviour.
pub fn rw(name: &str, lhs: &str, rhs: &str) -> TensorRewrite {
    let searcher =
        parse_pattern(lhs).unwrap_or_else(|e| panic!("rule {name}: bad LHS pattern `{lhs}`: {e}"));
    let applier =
        parse_pattern(rhs).unwrap_or_else(|e| panic!("rule {name}: bad RHS pattern `{rhs}`: {e}"));
    // Rule definitions are static program data: compile the e-matching
    // programs (plain and guarded) up front so the first exploration
    // iteration pays no compilation cost (clones of the rule inherit the
    // compiled programs).
    searcher.precompile();
    let guards = shape_guards(&applier);
    Rewrite::new_conditional(name, searcher, applier.clone(), shape_check(applier))
        .with_guards(guards)
}

/// Builds both directions of a bidirectional rule, naming them `name` and
/// `name-rev`.
pub fn rw_bidi(name: &str, lhs: &str, rhs: &str) -> Vec<TensorRewrite> {
    vec![rw(name, lhs, rhs), rw(&format!("{name}-rev"), rhs, lhs)]
}

/// The double-transpose elimination rule, which additionally requires the
/// permutation literal to be self-inverse.
///
/// The requirement reads only `?p`'s own analysis data, so it compiles to
/// an e-matching guard: inadmissible permutations never even produce a
/// match. The same check is *also* kept as the post-match
/// [`Condition`](tensat_egraph::Condition) — on the guarded search path it
/// can never fire (the guard already pruned every violator), but
/// `searcher` is a public field and code applying matches from an
/// *unguarded* search (benches, differential tests, external callers)
/// must not be able to union `x` with a non-involutive double transpose.
fn double_transpose_rule() -> TensorRewrite {
    let searcher = parse_pattern("(transpose (transpose ?x ?p) ?p)").unwrap();
    let applier = parse_pattern("?x").unwrap();
    fn involutive_data(d: &TensorData) -> bool {
        match d {
            TensorData::Str(sym) => decode_permutation(*sym)
                .map(|perm| involutive_permutation(&perm))
                .unwrap_or(false),
            _ => false,
        }
    }
    // The involutive check needs the decoded permutation, so it keeps a
    // dynamic predicate — but conjoined with a `Str` tag mask, non-string
    // bindings are rejected by the tag test alone, before the `Arc<dyn>`
    // call ever runs.
    let guard: TensorGuard =
        Guard::tags(DataKind::Str.tag_mask()).and(Guard::from_fn(involutive_data));
    let cond = Arc::new(
        |egraph: &tensat_egraph::EGraph<TensorLang, TensorAnalysis>,
         _class: tensat_egraph::Id,
         subst: &tensat_egraph::Subst| {
            subst
                .get(Var::new("p"))
                .is_some_and(|p| involutive_data(&egraph.eclass(p).data))
        },
    );
    Rewrite::new_conditional("double-transpose", searcher, applier, cond)
        .with_guards(vec![(Var::new("p"), guard)])
}

/// The full single-pattern rule set.
///
/// Rule families (names in parentheses):
///
/// * element-wise algebra: commutativity and associativity of `ewadd` /
///   `ewmul`, distributivity (`ewadd-*`, `ewmul-*`)
/// * matmul algebra: associativity, linearity over `ewadd`
///   (`matmul-assoc`, `matmul-linear*`)
/// * operator fusion: activations fused into matmul/conv
///   (`fuse-*`, and the reverse unfuse rules)
/// * conv linearity over weights and inputs (`conv-add-weights`,
///   `conv-concat-inputs`)
/// * concat/split algebra: split of concat, concat of matmuls/convs
///   sharing an input (`split-concat-*`, `concat-matmul`, `concat-conv`)
/// * transpose algebra (`double-transpose`, `transpose-matmul`)
/// * the Figure 11 batching rule (`batch-matmul-add`)
pub fn single_rules() -> Vec<TensorRewrite> {
    let mut rules = vec![];

    // --- element-wise algebra ------------------------------------------------
    rules.push(rw("ewadd-comm", "(ewadd ?x ?y)", "(ewadd ?y ?x)"));
    rules.extend(rw_bidi(
        "ewadd-assoc",
        "(ewadd ?x (ewadd ?y ?z))",
        "(ewadd (ewadd ?x ?y) ?z)",
    ));
    rules.push(rw("ewmul-comm", "(ewmul ?x ?y)", "(ewmul ?y ?x)"));
    rules.extend(rw_bidi(
        "ewmul-assoc",
        "(ewmul ?x (ewmul ?y ?z))",
        "(ewmul (ewmul ?x ?y) ?z)",
    ));
    rules.extend(rw_bidi(
        "distribute-mul-over-add",
        "(ewmul (ewadd ?x ?y) ?z)",
        "(ewadd (ewmul ?x ?z) (ewmul ?y ?z))",
    ));

    // --- matmul algebra ------------------------------------------------------
    rules.extend(rw_bidi(
        "matmul-assoc",
        "(matmul 0 ?a (matmul 0 ?b ?c))",
        "(matmul 0 (matmul 0 ?a ?b) ?c)",
    ));
    rules.extend(rw_bidi(
        "matmul-linear-rhs",
        "(matmul 0 ?a (ewadd ?b ?c))",
        "(ewadd (matmul 0 ?a ?b) (matmul 0 ?a ?c))",
    ));
    rules.extend(rw_bidi(
        "matmul-linear-lhs",
        "(matmul 0 (ewadd ?a ?b) ?c)",
        "(ewadd (matmul 0 ?a ?c) (matmul 0 ?b ?c))",
    ));

    // --- operator fusion -----------------------------------------------------
    rules.extend(rw_bidi(
        "fuse-matmul-relu",
        "(relu (matmul 0 ?a ?b))",
        "(matmul 1 ?a ?b)",
    ));
    rules.extend(rw_bidi(
        "fuse-matmul-tanh",
        "(tanh (matmul 0 ?a ?b))",
        "(matmul 2 ?a ?b)",
    ));
    rules.extend(rw_bidi(
        "fuse-matmul-sigmoid",
        "(sigmoid (matmul 0 ?a ?b))",
        "(matmul 3 ?a ?b)",
    ));
    rules.extend(rw_bidi(
        "fuse-conv-relu",
        "(relu (conv ?sh ?sw ?p 0 ?x ?w))",
        "(conv ?sh ?sw ?p 1 ?x ?w)",
    ));

    // --- conv linearity ------------------------------------------------------
    // conv(x, w1) + conv(x, w2) == conv(x, w1 + w2): convolution is linear
    // in the weights; the weight addition is pre-computable.
    rules.extend(rw_bidi(
        "conv-add-weights",
        "(ewadd (conv ?sh ?sw ?p 0 ?x ?w1) (conv ?sh ?sw ?p 0 ?x ?w2))",
        "(conv ?sh ?sw ?p 0 ?x (ewadd ?w1 ?w2))",
    ));
    // conv(x1, w1) + conv(x2, w2) == conv(concat_c(x1,x2), concat_c(w1,w2)):
    // summing over concatenated input channels (paper Fig. 10).
    rules.extend(rw_bidi(
        "conv-concat-inputs",
        "(ewadd (conv ?sh ?sw ?p 0 ?x1 ?w1) (conv ?sh ?sw ?p 0 ?x2 ?w2))",
        "(conv ?sh ?sw ?p 0 (concat2 1 ?x1 ?x2) (concat2 1 ?w1 ?w2))",
    ));

    // --- concat / split algebra ---------------------------------------------
    rules.push(rw(
        "split0-of-concat",
        "(split0 (split ?ax (concat2 ?ax ?x ?y)))",
        "?x",
    ));
    rules.push(rw(
        "split1-of-concat",
        "(split1 (split ?ax (concat2 ?ax ?x ?y)))",
        "?y",
    ));
    // concat of two matmuls sharing the data input == matmul of concatenated
    // weights (paper Fig. 8 as a single-pattern rule).
    rules.extend(rw_bidi(
        "concat-matmul",
        "(concat2 1 (matmul ?act ?x ?w1) (matmul ?act ?x ?w2))",
        "(matmul ?act ?x (concat2 1 ?w1 ?w2))",
    ));
    // concat (over output channels) of two convs sharing the input == conv
    // with concatenated weights (paper Fig. 9 as a single-pattern rule).
    rules.extend(rw_bidi(
        "concat-conv",
        "(concat2 1 (conv ?sh ?sw ?p ?act ?x ?w1) (conv ?sh ?sw ?p ?act ?x ?w2))",
        "(conv ?sh ?sw ?p ?act ?x (concat2 0 ?w1 ?w2))",
    ));
    // Batching two matmuls whose outputs are added (paper Fig. 11):
    // x·w1 + y·w2 == [x y]·[w1; w2].
    rules.extend(rw_bidi(
        "batch-matmul-add",
        "(ewadd (matmul 0 ?x ?w1) (matmul 0 ?y ?w2))",
        "(matmul 0 (concat2 1 ?x ?y) (concat2 0 ?w1 ?w2))",
    ));

    // --- transpose algebra ---------------------------------------------------
    rules.push(double_transpose_rule());
    rules.extend(rw_bidi(
        "transpose-matmul",
        "(transpose (matmul 0 ?a ?b) \"1_0\")",
        "(matmul 0 (transpose ?b \"1_0\") (transpose ?a \"1_0\"))",
    ));

    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensat_egraph::{AstSize, Extractor, Runner};
    use tensat_ir::{CostModel, GraphBuilder, TensorEGraph};

    fn saturate(expr: &tensat_egraph::RecExpr<TensorLang>) -> (TensorEGraph, tensat_egraph::Id) {
        let mut runner = Runner::new(TensorAnalysis)
            .with_expr(expr)
            .with_iter_limit(10)
            .with_node_limit(50_000)
            .with_time_limit(std::time::Duration::from_secs(10));
        runner.run(&single_rules());
        let root = runner.roots[0];
        (runner.egraph, root)
    }

    #[test]
    fn rule_set_is_well_formed() {
        let rules = single_rules();
        assert!(rules.len() >= 25, "expected a substantial rule set");
        let mut names: Vec<&str> = rules.iter().map(|r| r.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), rules.len(), "rule names must be unique");
    }

    #[test]
    fn fusion_rule_fires_and_improves_cost() {
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[64, 256]);
        let w = g.weight("w", &[256, 256]);
        let m = g.matmul(x, w);
        let r = g.relu(m);
        let expr = g.finish(&[r]);
        let cm = CostModel::default();
        let original = cm.graph_cost(&expr);

        let (eg, root) = saturate(&expr);
        // The fused matmul must now be represented in the root class.
        let ex = Extractor::new(&eg, AstSize);
        let (_, smallest) = ex.find_best(root).unwrap();
        assert!(
            smallest.to_string().contains("matmul 1") || smallest.to_string().contains("(matmul 1")
        );
        assert!(cm.graph_cost(&smallest) < original);
    }

    #[test]
    fn split_of_concat_cancels() {
        let mut g = GraphBuilder::new();
        let a = g.weight("a", &[16, 8]);
        let b = g.weight("b", &[16, 8]);
        let cat = g.concat2(1, a, b);
        let sp = g.split(1, cat);
        let s0 = g.split0(sp);
        let expr = g.finish(&[s0]);
        let (eg, root) = saturate(&expr);
        let ex = Extractor::new(&eg, AstSize);
        let (_, best) = ex.find_best(root).unwrap();
        // The best term is just the weight `a`.
        assert!(best.to_string().contains("weight"));
        assert!(!best.to_string().contains("concat"));
    }

    #[test]
    fn conv_add_weights_precomputes() {
        // conv(x,w1) + conv(x,w2) should collapse to a single conv with a
        // pre-computed weight sum, halving the conv work.
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[1, 64, 28, 28]);
        let w1 = g.weight("w1", &[64, 64, 3, 3]);
        let w2 = g.weight("w2", &[64, 64, 3, 3]);
        let c1 = g.conv(
            x,
            w1,
            (1, 1),
            tensat_ir::Padding::Same,
            tensat_ir::Activation::None,
        );
        let c2 = g.conv(
            x,
            w2,
            (1, 1),
            tensat_ir::Padding::Same,
            tensat_ir::Activation::None,
        );
        let sum = g.ewadd(c1, c2);
        let expr = g.finish(&[sum]);
        let cm = CostModel::default();
        let original = cm.graph_cost(&expr);
        let (eg, root) = saturate(&expr);
        // Extract by actual cost: pick per-class min-cost nodes greedily.
        let ex = Extractor::new(&eg, crate::testing::GraphCost::new(cm.clone(), &eg));
        let (_, best) = ex.find_best(root).unwrap();
        assert!(
            cm.graph_cost(&best) < original * 0.75,
            "expected ≥25% improvement, got {} -> {}",
            original,
            cm.graph_cost(&best)
        );
    }

    #[test]
    fn shape_check_blocks_invalid_batching() {
        // Two matmuls with incompatible inner dimensions must not be batched
        // by the Fig. 11 rule into an ill-typed graph: saturation must never
        // produce an invalid e-class that extraction could pick.
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[8, 32]);
        let y = g.input("y", &[8, 16]);
        let w1 = g.weight("w1", &[32, 8]);
        let w2 = g.weight("w2", &[16, 8]);
        let m1 = g.matmul(x, w1);
        let m2 = g.matmul(y, w2);
        let s = g.ewadd(m1, m2);
        let expr = g.finish(&[s]);
        let (eg, root) = saturate(&expr);
        let ex = Extractor::new(&eg, AstSize);
        let (_, best) = ex.find_best(root).unwrap();
        let data = tensat_ir::infer_recexpr(&best);
        assert!(data.iter().all(|d| d.is_valid()));
    }

    /// A non-involutive double transpose must be rejected twice over: the
    /// guard prunes the match during search (the production path), and the
    /// retained post-match condition rejects it for anyone applying
    /// matches from an *unguarded* search of the public `searcher`.
    #[test]
    fn non_involutive_double_transpose_is_rejected_by_guard_and_condition() {
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[4, 5, 6]);
        let t1 = g.transpose(x, &[1, 2, 0]); // 3-cycle: not self-inverse
        let t2 = g.transpose(t1, &[1, 2, 0]);
        let expr = g.finish(&[t2]);
        let mut eg = TensorEGraph::new(TensorAnalysis);
        eg.add_expr(&expr);
        eg.rebuild();

        let rule = single_rules()
            .into_iter()
            .find(|r| r.name == "double-transpose")
            .expect("rule exists");
        // Guarded (production) search: no match at all.
        assert!(rule.search(&eg).is_empty());
        // Unguarded search of the raw pattern finds the structural match...
        let raw = rule.searcher.search(&eg);
        assert_eq!(raw.len(), 1);
        // ...but the retained condition refuses to let it fire.
        let cond = rule.condition.as_ref().expect("condition retained");
        for m in &raw {
            for s in &m.substs {
                assert!(!cond(&eg, m.eclass, s), "condition must reject {s:?}");
            }
        }
        // An involutive permutation still goes through end to end.
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[4, 5]);
        let t1 = g.transpose(x, &[1, 0]);
        let t2 = g.transpose(t1, &[1, 0]);
        let expr = g.finish(&[t2]);
        let mut eg = TensorEGraph::new(TensorAnalysis);
        eg.add_expr(&expr);
        eg.rebuild();
        assert_eq!(rule.search(&eg).len(), 1);
    }

    #[test]
    fn double_transpose_eliminated() {
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[8, 16]);
        let t1 = g.transpose(x, &[1, 0]);
        let t2 = g.transpose(t1, &[1, 0]);
        let expr = g.finish(&[t2]);
        let (eg, root) = saturate(&expr);
        let ex = Extractor::new(&eg, AstSize);
        let (_, best) = ex.find_best(root).unwrap();
        assert!(!best.to_string().contains("transpose"));
    }
}

/// Test-support cost function shared by this crate's tests and downstream
/// crates' tests: greedy extraction directly by the analytical cost model.
pub mod testing {
    use tensat_egraph::{CostFunction, Id, Language};
    use tensat_ir::{CostModel, TensorAnalysis, TensorData, TensorLang};

    /// A [`CostFunction`] that charges each e-node its cost-model cost.
    /// Children data is read from a snapshot of the e-graph analysis taken
    /// at construction time.
    #[derive(Debug, Clone)]
    pub struct GraphCost {
        model: CostModel,
        class_data: std::collections::HashMap<Id, TensorData>,
    }

    impl GraphCost {
        /// Snapshots the analysis data of `egraph` for cost evaluation.
        pub fn new(
            model: CostModel,
            egraph: &tensat_egraph::EGraph<TensorLang, TensorAnalysis>,
        ) -> Self {
            let class_data = egraph.classes().map(|c| (c.id, c.data.clone())).collect();
            GraphCost { model, class_data }
        }
    }

    impl CostFunction<TensorLang> for GraphCost {
        type Cost = f64;
        fn cost<C>(&mut self, enode: &TensorLang, mut costs: C) -> f64
        where
            C: FnMut(Id) -> f64,
        {
            let get = |id: Id| {
                self.class_data
                    .get(&id)
                    .cloned()
                    .unwrap_or_else(|| TensorData::invalid("unknown class"))
            };
            let own = self.model.node_cost(enode, &get);
            enode.children().iter().fold(own, |acc, &c| acc + costs(c))
        }
    }
}
