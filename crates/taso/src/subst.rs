//! Graph-level substitution: matching rewrite-rule patterns directly on a
//! concrete tensor graph and applying them destructively (producing a new
//! graph), the way sequential optimizers like TASO work.
//!
//! The trick used here keeps the implementation small and obviously
//! consistent with TENSAT: a concrete graph is loaded into a fresh e-graph
//! (without running any rewrites), which gives hash-consing and pattern
//! matching for free; a match is then applied by *replacing* the matched
//! node's class representative when rebuilding the concrete graph, rather
//! than by unioning.

use std::collections::HashMap;
use tensat_egraph::{Id, Language, RecExpr, Subst};
use tensat_ir::{CostModel, TensorAnalysis, TensorData, TensorEGraph, TensorLang};
use tensat_rules::{pattern_data, TensorRewrite};

/// One applicable substitution site on a concrete graph.
#[derive(Debug, Clone)]
pub struct GraphMatch {
    /// Index of the rewrite rule in the rule list.
    pub rule_index: usize,
    /// The e-class (node) of the loaded graph where the rule's left-hand
    /// side matched.
    pub eclass: Id,
    /// The variable binding.
    pub subst: Subst,
}

/// Loads a concrete graph into an e-graph without applying any rewrites.
/// Returns the e-graph and the root class.
pub fn load_graph(graph: &RecExpr<TensorLang>) -> (TensorEGraph, Id) {
    let mut egraph = TensorEGraph::new(TensorAnalysis);
    let root = egraph.add_expr(graph);
    egraph.rebuild();
    (egraph, root)
}

/// Finds every applicable substitution of `rules` on `graph` (all rules, all
/// sites, all bindings), including the rules' shape-check conditions.
pub fn find_substitutions(graph: &RecExpr<TensorLang>, rules: &[TensorRewrite]) -> Vec<GraphMatch> {
    let (egraph, _) = load_graph(graph);
    let mut out = vec![];
    for (rule_index, rule) in rules.iter().enumerate() {
        for m in rule.search(&egraph) {
            for subst in m.substs {
                if let Some(cond) = &rule.condition {
                    if !cond(&egraph, m.eclass, &subst) {
                        continue;
                    }
                }
                out.push(GraphMatch {
                    rule_index,
                    eclass: m.eclass,
                    subst,
                });
            }
        }
    }
    out
}

/// Applies one substitution to the graph, producing the rewritten graph.
/// Returns `None` if the rewritten graph is ill-typed (the destructive
/// application lost a precondition) or the match no longer applies.
pub fn apply_substitution(
    graph: &RecExpr<TensorLang>,
    rules: &[TensorRewrite],
    m: &GraphMatch,
) -> Option<RecExpr<TensorLang>> {
    let (mut egraph, root) = load_graph(graph);
    let rule = &rules[m.rule_index];

    // Instantiate the right-hand side and remember which class it landed in;
    // this may create new classes.
    let new_root = rule.applier.instantiate(&mut egraph, &m.subst);
    egraph.rebuild();

    // Destructive replacement: rebuild the concrete graph from the e-graph,
    // but whenever we reach the matched class, emit the new subgraph
    // instead of the original node.
    let matched = egraph.find(m.eclass);
    let replacement = egraph.find(new_root);
    let mut out = RecExpr::default();
    let mut memo: HashMap<Id, Option<Id>> = HashMap::new();
    let root_id =
        copy_with_replacement(&egraph, root, matched, replacement, &mut out, &mut memo, 0)?;
    let _ = root_id;
    // Reject ill-typed results (e.g. a rule applied at a site whose shapes
    // were only valid inside the e-graph union).
    let data = tensat_ir::infer_recexpr(&out);
    if data.iter().all(TensorData::is_valid) {
        Some(out)
    } else {
        None
    }
}

/// Copies the term represented by `class` out of the e-graph (each class
/// has exactly one original node plus possibly the freshly instantiated
/// replacement), substituting `replacement` for `matched`.
fn copy_with_replacement(
    egraph: &TensorEGraph,
    class: Id,
    matched: Id,
    replacement: Id,
    out: &mut RecExpr<TensorLang>,
    memo: &mut HashMap<Id, Option<Id>>,
    depth: usize,
) -> Option<Id> {
    if depth > 10_000 {
        return None; // defensive: malformed replacement produced a cycle
    }
    let class = egraph.find(class);
    let key = class;
    if let Some(done) = memo.get(&key) {
        return *done;
    }
    memo.insert(key, None);
    // Decide which e-node to materialise for this class.
    let target_class = if class == matched && class != replacement {
        replacement
    } else {
        class
    };
    // Prefer the newest node of the target class when it is the matched
    // class being replaced (the instantiated RHS), otherwise the oldest
    // (the original graph node).
    let eclass = egraph.eclass(target_class);
    let node = if class == matched && class != replacement {
        eclass.iter_with_birth().max_by_key(|(_, b)| *b)?.0.clone()
    } else {
        eclass.iter_with_birth().min_by_key(|(_, b)| *b)?.0.clone()
    };
    let mut children = Vec::with_capacity(node.children().len());
    for &c in node.children() {
        children.push(copy_with_replacement(
            egraph,
            c,
            matched,
            replacement,
            out,
            memo,
            depth + 1,
        )?);
    }
    let mut i = 0;
    let node = node.map_children(|_| {
        let id = children[i];
        i += 1;
        id
    });
    let id = out.add(node);
    memo.insert(key, Some(id));
    Some(id)
}

/// Estimated runtime of a concrete graph under the cost model (µs).
pub fn graph_runtime(graph: &RecExpr<TensorLang>, model: &CostModel) -> f64 {
    model.graph_cost(graph)
}

/// Uses `pattern_data` to sanity check the instantiated RHS of a match
/// before applying it (exposed for tests).
pub fn match_is_shape_valid(
    graph: &RecExpr<TensorLang>,
    rules: &[TensorRewrite],
    m: &GraphMatch,
) -> bool {
    let (egraph, _) = load_graph(graph);
    pattern_data(&egraph, &rules[m.rule_index].applier, &m.subst)
        .iter()
        .all(|d| d.is_valid())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensat_ir::{Activation, GraphBuilder};
    use tensat_rules::single_rules;

    fn relu_matmul_graph() -> RecExpr<TensorLang> {
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[32, 64]);
        let w = g.weight("w", &[64, 64]);
        let m = g.matmul(x, w);
        let r = g.relu(m);
        g.finish(&[r])
    }

    #[test]
    fn finds_fusion_substitution() {
        let graph = relu_matmul_graph();
        let rules = single_rules();
        let matches = find_substitutions(&graph, &rules);
        assert!(!matches.is_empty());
        let fuse_idx = rules
            .iter()
            .position(|r| r.name == "fuse-matmul-relu")
            .unwrap();
        assert!(matches.iter().any(|m| m.rule_index == fuse_idx));
    }

    #[test]
    fn applying_fusion_reduces_cost() {
        let graph = relu_matmul_graph();
        let rules = single_rules();
        let model = CostModel::default();
        let before = graph_runtime(&graph, &model);
        let fuse_idx = rules
            .iter()
            .position(|r| r.name == "fuse-matmul-relu")
            .unwrap();
        let m = find_substitutions(&graph, &rules)
            .into_iter()
            .find(|m| m.rule_index == fuse_idx)
            .unwrap();
        assert!(match_is_shape_valid(&graph, &rules, &m));
        let rewritten = apply_substitution(&graph, &rules, &m).unwrap();
        let after = graph_runtime(&rewritten, &model);
        assert!(after < before, "{after} should be < {before}");
        assert!(rewritten.to_string().contains("(matmul 1"));
        assert!(!rewritten.to_string().contains("relu"));
    }

    #[test]
    fn commutativity_keeps_cost_identical() {
        let mut g = GraphBuilder::new();
        let a = g.input("a", &[8, 8]);
        let b = g.input("b", &[8, 8]);
        let s = g.ewadd(a, b);
        let graph = g.finish(&[s]);
        let rules = single_rules();
        let model = CostModel::default();
        let comm_idx = rules.iter().position(|r| r.name == "ewadd-comm").unwrap();
        let m = find_substitutions(&graph, &rules)
            .into_iter()
            .find(|m| m.rule_index == comm_idx)
            .unwrap();
        let rewritten = apply_substitution(&graph, &rules, &m).unwrap();
        assert!((graph_runtime(&rewritten, &model) - graph_runtime(&graph, &model)).abs() < 1e-9);
    }

    #[test]
    fn rewritten_graphs_stay_well_typed() {
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[16, 32]);
        let w1 = g.weight("w1", &[32, 32]);
        let w2 = g.weight("w2", &[32, 32]);
        let m1 = g.matmul_act(Activation::Relu, x, w1);
        let m2 = g.matmul_act(Activation::Relu, x, w2);
        let s = g.ewadd(m1, m2);
        let graph = g.finish(&[s]);
        let rules = single_rules();
        for m in find_substitutions(&graph, &rules).into_iter().take(50) {
            if let Some(rewritten) = apply_substitution(&graph, &rules, &m) {
                assert!(tensat_ir::infer_recexpr(&rewritten)
                    .iter()
                    .all(|d| d.is_valid()));
            }
        }
    }
}
