//! TASO-style cost-based backtracking search (Jia et al. 2019, Alg. 2).
//!
//! The search maintains a priority queue of candidate graphs ordered by
//! cost. At each step it pops the cheapest graph, enumerates every
//! applicable substitution at every site, and enqueues each rewritten graph
//! whose cost is below `alpha * best_cost`. The search runs for a fixed
//! number of iterations (popped graphs), recording both the total search
//! time and the time at which the best graph was *first* found — the
//! paper's "TASO total" and "TASO best" lines in Figure 5.

use crate::subst::{apply_substitution, find_substitutions, graph_runtime};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::time::{Duration, Instant};
use tensat_egraph::RecExpr;
use tensat_ir::{CostModel, TensorLang};
use tensat_rules::TensorRewrite;

/// Configuration of the backtracking search.
#[derive(Debug, Clone)]
pub struct BacktrackingConfig {
    /// Number of search iterations (graphs popped from the queue); the
    /// paper's artifact default is 100.
    pub iterations: usize,
    /// Admission threshold: a candidate is enqueued if its cost is below
    /// `alpha * best_cost`. The paper uses 1.0 (and reports 1.05 makes
    /// almost no difference).
    pub alpha: f64,
    /// Wall-clock limit for the search.
    pub time_limit: Duration,
    /// Maximum queue size (candidates beyond this are dropped).
    pub max_queue: usize,
    /// The operator cost model (shared with TENSAT).
    pub cost_model: CostModel,
}

impl Default for BacktrackingConfig {
    fn default() -> Self {
        BacktrackingConfig {
            iterations: 100,
            alpha: 1.0,
            time_limit: Duration::from_secs(60),
            max_queue: 10_000,
            cost_model: CostModel::default(),
        }
    }
}

/// The outcome of a backtracking search.
#[derive(Debug, Clone)]
pub struct BacktrackingResult {
    /// The best graph found.
    pub best_graph: RecExpr<TensorLang>,
    /// Cost of the input graph (µs).
    pub original_cost: f64,
    /// Cost of the best graph (µs).
    pub best_cost: f64,
    /// Total search time ("TASO total").
    pub total_time: Duration,
    /// Time at which the best graph was first reached ("TASO best").
    pub time_to_best: Duration,
    /// Number of graphs popped from the queue.
    pub graphs_explored: usize,
    /// Number of candidate graphs generated.
    pub candidates_generated: usize,
}

impl BacktrackingResult {
    /// Speedup of the best graph over the original, in percent.
    pub fn speedup_percent(&self) -> f64 {
        if self.best_cost <= 0.0 {
            return 0.0;
        }
        (self.original_cost / self.best_cost - 1.0) * 100.0
    }
}

/// A candidate graph in the priority queue (min-heap by cost).
struct Candidate {
    cost: f64,
    graph: RecExpr<TensorLang>,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so that BinaryHeap (a max-heap) pops the *cheapest* graph.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
    }
}

/// The sequential backtracking optimizer.
#[derive(Debug, Clone)]
pub struct BacktrackingSearch {
    rules: Vec<TensorRewrite>,
    config: BacktrackingConfig,
}

impl BacktrackingSearch {
    /// Creates a search over the given rule set.
    pub fn new(rules: Vec<TensorRewrite>, config: BacktrackingConfig) -> Self {
        BacktrackingSearch { rules, config }
    }

    /// Creates a search with the standard TASO single-pattern rule set.
    pub fn with_default_rules(config: BacktrackingConfig) -> Self {
        Self::new(tensat_rules::single_rules(), config)
    }

    /// The configuration in use.
    pub fn config(&self) -> &BacktrackingConfig {
        &self.config
    }

    /// Runs the search on a graph.
    pub fn run(&self, graph: &RecExpr<TensorLang>) -> BacktrackingResult {
        let start = Instant::now();
        let model = &self.config.cost_model;
        let original_cost = graph_runtime(graph, model);

        let mut best_graph = graph.clone();
        let mut best_cost = original_cost;
        let mut time_to_best = Duration::from_secs(0);

        let mut queue: BinaryHeap<Candidate> = BinaryHeap::new();
        let mut seen: HashSet<String> = HashSet::new();
        queue.push(Candidate {
            cost: original_cost,
            graph: graph.clone(),
        });
        seen.insert(graph.to_string());

        let mut graphs_explored = 0;
        let mut candidates_generated = 0;

        while let Some(Candidate { graph: current, .. }) = queue.pop() {
            if graphs_explored >= self.config.iterations
                || start.elapsed() >= self.config.time_limit
            {
                break;
            }
            graphs_explored += 1;

            for m in find_substitutions(&current, &self.rules) {
                if start.elapsed() >= self.config.time_limit {
                    break;
                }
                let Some(rewritten) = apply_substitution(&current, &self.rules, &m) else {
                    continue;
                };
                let key = rewritten.to_string();
                if !seen.insert(key) {
                    continue;
                }
                candidates_generated += 1;
                let cost = graph_runtime(&rewritten, model);
                if cost < best_cost {
                    best_cost = cost;
                    best_graph = rewritten.clone();
                    time_to_best = start.elapsed();
                }
                if cost < self.config.alpha * best_cost && queue.len() < self.config.max_queue {
                    queue.push(Candidate {
                        cost,
                        graph: rewritten,
                    });
                }
            }
        }

        BacktrackingResult {
            best_graph,
            original_cost,
            best_cost,
            total_time: start.elapsed(),
            time_to_best,
            graphs_explored,
            candidates_generated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensat_ir::GraphBuilder;

    fn parallel_matmuls() -> RecExpr<TensorLang> {
        let mut g = GraphBuilder::new();
        let x = g.input("x", &[32, 64]);
        let w1 = g.weight("w1", &[64, 64]);
        let w2 = g.weight("w2", &[64, 64]);
        let m1 = g.matmul(x, w1);
        let m2 = g.matmul(x, w2);
        let r1 = g.relu(m1);
        let r2 = g.relu(m2);
        g.finish(&[r1, r2])
    }

    #[test]
    fn search_improves_fusable_graph() {
        let graph = parallel_matmuls();
        let search = BacktrackingSearch::with_default_rules(BacktrackingConfig {
            iterations: 20,
            ..Default::default()
        });
        let result = search.run(&graph);
        assert!(result.best_cost < result.original_cost);
        assert!(result.speedup_percent() > 0.0);
        assert!(result.time_to_best <= result.total_time);
        assert!(result.graphs_explored >= 1);
        assert!(tensat_ir::infer_recexpr(&result.best_graph)
            .iter()
            .all(|d| d.is_valid()));
    }

    #[test]
    fn zero_iterations_returns_original() {
        let graph = parallel_matmuls();
        let search = BacktrackingSearch::with_default_rules(BacktrackingConfig {
            iterations: 0,
            ..Default::default()
        });
        let result = search.run(&graph);
        assert_eq!(result.best_cost, result.original_cost);
        assert_eq!(result.graphs_explored, 0);
    }

    #[test]
    fn more_iterations_never_hurt() {
        let graph = parallel_matmuls();
        let short = BacktrackingSearch::with_default_rules(BacktrackingConfig {
            iterations: 2,
            ..Default::default()
        })
        .run(&graph);
        let long = BacktrackingSearch::with_default_rules(BacktrackingConfig {
            iterations: 30,
            ..Default::default()
        })
        .run(&graph);
        assert!(long.best_cost <= short.best_cost + 1e-9);
    }

    #[test]
    fn alpha_above_one_explores_more_candidates() {
        let graph = parallel_matmuls();
        let strict = BacktrackingSearch::with_default_rules(BacktrackingConfig {
            iterations: 15,
            alpha: 1.0,
            ..Default::default()
        })
        .run(&graph);
        let relaxed = BacktrackingSearch::with_default_rules(BacktrackingConfig {
            iterations: 15,
            alpha: 1.2,
            ..Default::default()
        })
        .run(&graph);
        assert!(relaxed.candidates_generated >= strict.candidates_generated);
        assert!(relaxed.best_cost <= strict.best_cost + 1e-9);
    }
}
