//! # tensat-taso
//!
//! The sequential baseline TENSAT is compared against: a TASO-style
//! backtracking search over graph substitutions (Jia et al., SOSP 2019,
//! Algorithm 2). Where TENSAT applies *all* rewrites simultaneously inside
//! an e-graph, this baseline repeatedly applies *one* substitution at a
//! time to a concrete graph, keeps a priority queue of candidate graphs
//! ordered by cost, and admits candidates whose cost is below
//! `alpha * best_cost`.
//!
//! The baseline reuses the same rule set, the same pattern language, and
//! the same cost model as TENSAT, so the comparison isolates the search
//! strategy — exactly the comparison the paper's Tables 1/Figures 4–6 make.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backtracking;
pub mod subst;

pub use backtracking::{BacktrackingConfig, BacktrackingResult, BacktrackingSearch};
pub use subst::{apply_substitution, find_substitutions, GraphMatch};
