//! Quickstart: build a small tensor graph and optimize it with TENSAT.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use tensat::prelude::*;

fn main() {
    // A toy "multi-head projection": four matmuls reading the same
    // activations, each followed by a ReLU. This is exactly the pattern the
    // paper's Figure 8 rewrite collapses into a single wide matmul.
    let mut g = GraphBuilder::new();
    let x = g.input("activations", &[64, 256]);
    let mut heads = vec![];
    for i in 0..4 {
        let w = g.weight(&format!("w{i}"), &[256, 128]);
        let m = g.matmul(x, w);
        heads.push(g.relu(m));
    }
    let graph = g.finish(&heads);

    println!("input graph ({} nodes):\n  {}\n", graph.len(), graph);

    let config = OptimizerConfig::default();
    let optimizer = Optimizer::new(config);
    let result = optimizer
        .optimize(&graph)
        .expect("optimization should succeed");

    println!(
        "original cost : {:8.2} µs (estimated)",
        result.original_cost
    );
    println!(
        "optimized cost: {:8.2} µs (estimated)",
        result.optimized_cost
    );
    println!("speedup       : {:8.1} %", result.speedup_percent());
    println!(
        "optimizer time: {:8.3} s ({} e-nodes, {} e-classes, {} iterations)",
        result.optimizer_time().as_secs_f64(),
        result.stats.exploration.enodes,
        result.stats.exploration.eclasses,
        result.stats.exploration.iterations,
    );
    println!("\noptimized graph:\n  {}", result.optimized_graph);
}
