//! Compare greedy and ILP extraction on the same explored e-graph — the
//! single-model version of the paper's Table 4 ablation, showing why ILP
//! extraction is needed to pick shared (split) subgraphs.
//!
//! Run with:
//! ```text
//! cargo run --release --example compare_extraction
//! ```

use tensat::core::{extract_greedy, extract_ilp, IlpConfig};
use tensat::ir::TensorAnalysis;
use tensat::prelude::*;

fn main() {
    let scale = ModelScale::tiny();
    let graph = tensat::models::nasrnn(scale);
    let model = CostModel::default();
    let original = model.graph_cost(&graph);

    // Explore once.
    let mut egraph = TensorEGraph::new(TensorAnalysis);
    let root = egraph.add_expr(&graph);
    egraph.rebuild();
    let stats = explore(
        &mut egraph,
        root,
        &single_rules(),
        &multi_rules(),
        &ExplorationConfig::default(),
    );
    println!(
        "explored NasRNN (tiny): {} e-nodes, {} e-classes in {:.3}s",
        stats.enodes,
        stats.eclasses,
        stats.time.as_secs_f64()
    );

    // Extract twice from the same e-graph.
    let greedy = extract_greedy(&egraph, root, &model).expect("greedy extraction");
    let (ilp, ilp_stats) =
        extract_ilp(&egraph, root, &model, &IlpConfig::default()).expect("ILP extraction");

    println!("original cost : {original:10.2} µs");
    println!(
        "greedy        : {:10.2} µs  ({:.3}s)",
        greedy.cost,
        greedy.time.as_secs_f64()
    );
    println!(
        "ILP           : {:10.2} µs  ({:.3}s, {} vars, {} constraints, status {:?})",
        ilp.cost,
        ilp.time.as_secs_f64(),
        ilp_stats.num_vars,
        ilp_stats.num_constraints,
        ilp_stats.status,
    );
    if ilp.cost < greedy.cost {
        println!("\nILP extraction found a cheaper graph than greedy, as in paper Table 4.");
    } else {
        println!("\nGreedy matched ILP on this graph (no shared subgraphs were profitable).");
    }
}
