//! Compare the three extraction strategies on the same explored e-graph —
//! the single-model version of the paper's Table 4 ablation, showing why
//! DAG-aware extraction is needed to pick shared (split) subgraphs.
//!
//! Run with:
//! ```text
//! cargo run --release --example compare_extraction
//! ```

use tensat::core::{ExtractionStrategy, GreedyDag, IlpExtraction, TreeGreedy};
use tensat::ir::TensorAnalysis;
use tensat::prelude::*;

fn main() {
    let scale = ModelScale::tiny();
    let graph = tensat::models::nasrnn(scale);
    let model = CostModel::default();
    let original = model.graph_cost(&graph);

    // Explore once.
    let mut egraph = TensorEGraph::new(TensorAnalysis);
    let root = egraph.add_expr(&graph);
    egraph.rebuild();
    let stats = explore(
        &mut egraph,
        root,
        &single_rules(),
        &multi_rules(),
        &ExplorationConfig::default(),
    );
    println!(
        "explored NasRNN (tiny): {} e-nodes, {} e-classes in {:.3}s",
        stats.enodes,
        stats.eclasses,
        stats.time.as_secs_f64()
    );

    // Extract three times from the same e-graph, through the one seam.
    let strategies: [Box<dyn ExtractionStrategy>; 3] = [
        Box::new(TreeGreedy),
        Box::new(GreedyDag),
        Box::new(IlpExtraction::default()),
    ];
    println!("original      : {original:10.2} µs (DAG cost)");
    let mut costs = vec![];
    for strategy in &strategies {
        let out = strategy
            .extract(&egraph, root, &model)
            .expect("extraction succeeds on an explored model");
        print!(
            "{:14}: {:10.2} µs DAG / {:10.2} µs tree  ({:.3}s)",
            strategy.name(),
            out.dag_cost,
            out.tree_cost,
            out.time.as_secs_f64()
        );
        if let Some(ilp) = &out.ilp {
            print!(
                "  [{} vars, {} constraints, status {:?}]",
                ilp.num_vars, ilp.num_constraints, ilp.status
            );
        }
        println!();
        costs.push(out.dag_cost);
    }
    if costs[2] < costs[0] {
        println!("\nDAG-aware extraction found a cheaper graph than tree-greedy (paper Table 4).");
    } else {
        println!("\nTree-greedy matched the DAG-aware strategies on this graph.");
    }
}
