//! Optimize the BERT replica and compare TENSAT against the TASO-style
//! sequential baseline — a one-model version of the paper's Table 1.
//!
//! Run with:
//! ```text
//! cargo run --release --example optimize_bert
//! ```

use std::time::Duration;
use tensat::prelude::*;

fn main() {
    let scale = ModelScale {
        blocks: 2,
        hidden: 128,
        batch: 8,
    };
    let graph = tensat::models::bert(scale);
    println!("BERT replica: {} nodes", graph.len());

    // --- sequential baseline (TASO-style backtracking) ---------------------
    let baseline = BacktrackingSearch::with_default_rules(BacktrackingConfig {
        iterations: 100,
        alpha: 1.0,
        time_limit: Duration::from_secs(60),
        ..Default::default()
    });
    let taso = baseline.run(&graph);
    println!(
        "TASO    : speedup {:6.1}%  total {:7.3}s  time-to-best {:7.3}s  ({} graphs explored)",
        taso.speedup_percent(),
        taso.total_time.as_secs_f64(),
        taso.time_to_best.as_secs_f64(),
        taso.graphs_explored,
    );

    // --- TENSAT -------------------------------------------------------------
    let tensat = Optimizer::new(OptimizerConfig::default())
        .optimize(&graph)
        .expect("TENSAT optimization should succeed");
    println!(
        "TENSAT  : speedup {:6.1}%  total {:7.3}s  (explore {:.3}s + extract {:.3}s, {} e-nodes)",
        tensat.speedup_percent(),
        tensat.optimizer_time().as_secs_f64(),
        tensat.stats.exploration.time.as_secs_f64(),
        tensat.stats.extraction_time.as_secs_f64(),
        tensat.stats.exploration.enodes,
    );

    if tensat.speedup_percent() >= taso.speedup_percent() {
        println!("\nTENSAT matched or beat the sequential search, as in the paper.");
    } else {
        println!("\nNote: the sequential search won on this run; try increasing k_multi.");
    }
}
