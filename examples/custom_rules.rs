//! Using TENSAT with a custom rewrite-rule set: define rules from textual
//! patterns, add a multi-pattern rule, and optimize a graph with them.
//!
//! Run with:
//! ```text
//! cargo run --release --example custom_rules
//! ```

use tensat::prelude::*;
use tensat::rules::rw;

fn main() {
    // A graph with a fusable activation and two parallel matmuls.
    let mut g = GraphBuilder::new();
    let x = g.input("x", &[32, 128]);
    let w1 = g.weight("w1", &[128, 128]);
    let w2 = g.weight("w2", &[128, 128]);
    let m1 = g.matmul(x, w1);
    let r1 = g.relu(m1);
    let m2 = g.matmul(x, w2);
    let graph = g.finish(&[r1, m2]);

    // A minimal custom rule set: only ReLU fusion...
    let single = vec![rw(
        "my-fuse-matmul-relu",
        "(relu (matmul 0 ?a ?b))",
        "(matmul 1 ?a ?b)",
    )];
    // ...plus the paper's Figure 2 multi-pattern rule, written by hand.
    let multi = vec![MultiPatternRule::new(
        "my-merge-matmuls",
        &["(matmul ?act ?x ?w1)", "(matmul ?act ?x ?w2)"],
        &[
            "(split0 (split 1 (matmul ?act ?x (concat2 1 ?w1 ?w2))))",
            "(split1 (split 1 (matmul ?act ?x (concat2 1 ?w1 ?w2))))",
        ],
    )];

    let optimizer = Optimizer::with_rules(OptimizerConfig::default(), single, multi);
    let result = optimizer.optimize(&graph).expect("optimization succeeds");

    println!("original  : {:.2} µs", result.original_cost);
    println!("optimized : {:.2} µs", result.optimized_cost);
    println!("speedup   : {:.1} %", result.speedup_percent());
    println!("graph     : {}", result.optimized_graph);
}
