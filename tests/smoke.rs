//! Workspace smoke test: every published benchmark model must build, shape-
//! infer, and round-trip through the optimizer in greedy mode under tight
//! limits. This is the fast canary that catches manifest, feature, and
//! facade-re-export regressions long before the heavier end-to-end suite.

use std::time::Duration;
use tensat::prelude::*;

/// Deliberately tight limits: the point is wiring, not optimization quality.
fn smoke_config() -> OptimizerConfig {
    OptimizerConfig {
        k_multi: 1,
        max_iter: 2,
        node_limit: 1_000,
        exploration_time_limit: Duration::from_secs(5),
        extraction: ExtractionMode::Greedy,
        ..Default::default()
    }
}

#[test]
fn every_benchmark_builds_infers_and_optimizes() {
    assert!(!BENCHMARKS.is_empty(), "benchmark registry is empty");
    for &name in BENCHMARKS {
        let graph = build_benchmark(name, ModelScale::tiny());
        assert!(!graph.is_empty(), "{name}: built an empty graph");

        // Shape inference must assign a valid shape to every node.
        let shapes = tensat::ir::infer_recexpr(&graph);
        assert_eq!(shapes.len(), graph.len(), "{name}: missing shape data");
        assert!(
            shapes.iter().all(|d| d.is_valid()),
            "{name}: graph is ill-typed before optimization"
        );

        // The optimizer must round-trip without panicking and never make
        // the graph worse, even under tight greedy-mode limits.
        let result = Optimizer::new(smoke_config())
            .optimize(&graph)
            .unwrap_or_else(|e| panic!("{name}: optimize failed: {e}"));
        assert!(
            result.optimized_cost <= result.original_cost + 1e-9,
            "{name}: greedy smoke run made the graph worse \
             ({} -> {})",
            result.original_cost,
            result.optimized_cost
        );
        assert!(
            result.optimized_cost.is_finite() && result.original_cost.is_finite(),
            "{name}: non-finite cost"
        );
    }
}

#[test]
fn every_benchmark_survives_greedy_dag_extraction() {
    // Same canary as above, but through the DAG-aware greedy extractor: the
    // result must never be worse than the original *or* than tree-greedy's
    // honest DAG cost, on every model.
    for &name in BENCHMARKS {
        let graph = build_benchmark(name, ModelScale::tiny());
        let greedy = Optimizer::new(smoke_config())
            .optimize(&graph)
            .unwrap_or_else(|e| panic!("{name}: greedy optimize failed: {e}"));
        let dag = Optimizer::new(OptimizerConfig {
            extraction: ExtractionMode::GreedyDag,
            ..smoke_config()
        })
        .optimize(&graph)
        .unwrap_or_else(|e| panic!("{name}: greedy-dag optimize failed: {e}"));
        assert!(
            dag.optimized_cost <= dag.original_cost + 1e-9,
            "{name}: greedy-dag made the graph worse ({} -> {})",
            dag.original_cost,
            dag.optimized_cost
        );
        assert!(
            dag.optimized_cost <= greedy.optimized_cost + 1e-9,
            "{name}: greedy-dag ({}) lost to tree-greedy ({})",
            dag.optimized_cost,
            greedy.optimized_cost
        );
    }
}

#[test]
fn every_benchmark_survives_guided_exploration() {
    // The guided-exploration canary: beam search under a hard node budget
    // must stay within that budget on every model, still extract a valid
    // graph, and never make it worse. Tight limits — this guards the
    // snapshot/replay wiring, not search quality.
    for &name in BENCHMARKS {
        let graph = build_benchmark(name, ModelScale::tiny());
        let result = Optimizer::new(OptimizerConfig {
            exploration: ExplorationMode::Guided,
            extraction: ExtractionMode::GreedyDag,
            ..smoke_config()
        })
        .optimize(&graph)
        .unwrap_or_else(|e| panic!("{name}: guided optimize failed: {e}"));
        assert_eq!(result.stats.exploration.strategy, "guided", "{name}");
        assert!(
            result.stats.exploration.enodes <= smoke_config().node_limit,
            "{name}: guided left {} e-nodes over the budget of {}",
            result.stats.exploration.enodes,
            smoke_config().node_limit
        );
        assert!(
            result.optimized_cost <= result.original_cost + 1e-9,
            "{name}: guided smoke run made the graph worse ({} -> {})",
            result.original_cost,
            result.optimized_cost
        );
        let shapes = tensat::ir::infer_recexpr(&result.optimized_graph);
        assert!(
            shapes.iter().all(|d| d.is_valid()),
            "{name}: guided smoke run produced an ill-typed graph"
        );
    }
}

#[test]
fn facade_prelude_exposes_the_documented_surface() {
    // Compile-time check that the advertised prelude names resolve; a few
    // are also exercised so the test has observable behavior.
    let rules = single_rules();
    assert!(!rules.is_empty(), "single-pattern rule set is empty");
    assert!(!multi_rules().is_empty(), "multi-pattern rule set is empty");
    let pat = parse_pattern("(relu ?x)").expect("pattern parser rejected (relu ?x)");
    let _: &Pattern<TensorLang> = &pat;
    let _ = CostModel::default();
    let _ = IlpConfig::default();
    let _ = ExplorationConfig::default();
    let _ = BacktrackingConfig::default();
    let _: CycleFilter = CycleFilter::Efficient;
    let _ = GuidedConfig::default();
    let _ = TasoConfig::default();
    assert_eq!(ExplorationMode::Guided.strategy_name(), Guided.name());
    assert_eq!(ExplorationMode::Saturate.strategy_name(), Saturate.name());
    assert_eq!(
        ExplorationMode::Taso.strategy_name(),
        TasoBacktracking.name()
    );
}
