//! End-to-end integration tests spanning all crates: models are built,
//! explored, extracted, and compared against the sequential baseline.

use std::time::Duration;
use tensat::prelude::*;

fn fast_config() -> OptimizerConfig {
    OptimizerConfig {
        k_multi: 1,
        max_iter: 6,
        node_limit: 5_000,
        exploration_time_limit: Duration::from_secs(20),
        ilp_time_limit: Duration::from_secs(20),
        ..Default::default()
    }
}

#[test]
fn tensat_improves_or_preserves_every_benchmark() {
    for (name, graph) in tensat::models::all_benchmarks(ModelScale::tiny()) {
        let result = Optimizer::new(fast_config())
            .optimize(&graph)
            .unwrap_or_else(|e| panic!("{name}: optimization failed: {e}"));
        assert!(
            result.optimized_cost <= result.original_cost + 1e-9,
            "{name}: optimized graph is worse than the original"
        );
        // The optimized graph must be well-typed.
        assert!(
            tensat::ir::infer_recexpr(&result.optimized_graph)
                .iter()
                .all(|d| d.is_valid()),
            "{name}: optimized graph is ill-typed"
        );
    }
}

#[test]
fn nasrnn_gets_a_real_speedup() {
    // NasRNN is the paper's best case (many parallel matmuls): the
    // reproduction must find a strictly positive speedup.
    let graph = tensat::models::nasrnn(ModelScale::tiny());
    let result = Optimizer::new(fast_config()).optimize(&graph).unwrap();
    assert!(
        result.speedup_percent() > 5.0,
        "expected a clear speedup on NasRNN, got {:.2}%",
        result.speedup_percent()
    );
}

#[test]
fn tensat_matches_or_beats_sequential_baseline_on_nasrnn() {
    let graph = tensat::models::nasrnn(ModelScale::tiny());
    let taso = BacktrackingSearch::with_default_rules(BacktrackingConfig {
        iterations: 20,
        time_limit: Duration::from_secs(30),
        ..Default::default()
    })
    .run(&graph);
    let tensat = Optimizer::new(fast_config()).optimize(&graph).unwrap();
    assert!(
        tensat.optimized_cost <= taso.best_cost + 1e-6,
        "TENSAT ({}) should be at least as good as the baseline ({})",
        tensat.optimized_cost,
        taso.best_cost
    );
}

#[test]
fn greedy_and_ilp_extraction_are_both_available_end_to_end() {
    let graph = tensat::models::bert(ModelScale::tiny());
    let greedy = Optimizer::new(OptimizerConfig {
        extraction: ExtractionMode::Greedy,
        ..fast_config()
    })
    .optimize(&graph)
    .unwrap();
    let ilp = Optimizer::new(fast_config()).optimize(&graph).unwrap();
    assert!(ilp.optimized_cost <= greedy.optimized_cost + 1e-6);
}

#[test]
fn extracted_graph_reenters_the_egraph_as_equivalent() {
    // Soundness check: the optimized graph, added back to an e-graph with
    // the original, must land in the same e-class after saturation of the
    // rule set that produced it (we check a weaker but meaningful property:
    // its cost is finite and the graph is well-typed; full equivalence is
    // guaranteed by construction since extraction only picks represented
    // terms).
    let graph = tensat::models::squeezenet(ModelScale::tiny());
    let result = Optimizer::new(fast_config()).optimize(&graph).unwrap();
    let cost = CostModel::default().graph_cost(&result.optimized_graph);
    assert!(cost.is_finite());
    assert!((cost - result.optimized_cost).abs() < 1e-6);
}

#[test]
fn cycle_filtering_modes_agree_on_final_cost() {
    // With efficient filtering + ILP-without-cycle-constraints versus no
    // filtering + ILP-with-cycle-constraints, the optimized costs should be
    // comparable (the same rewrites are available; only the mechanism that
    // guarantees acyclicity differs).
    let graph = tensat::models::nasrnn(ModelScale::tiny());
    let filtered = Optimizer::new(fast_config()).optimize(&graph).unwrap();
    let constrained = Optimizer::new(OptimizerConfig {
        cycle_filter: CycleFilter::Off,
        ilp_cycle_constraints: true,
        ..fast_config()
    })
    .optimize(&graph)
    .unwrap();
    assert!(filtered.optimized_cost <= graph_cost(&graph) + 1e-6);
    assert!(constrained.optimized_cost <= graph_cost(&graph) + 1e-6);
    // Both must improve over the original.
    assert!(filtered.speedup_percent() >= 0.0);
    assert!(constrained.speedup_percent() >= 0.0);
}

fn graph_cost(graph: &RecExpr<TensorLang>) -> f64 {
    CostModel::default().graph_cost(graph)
}
